//! A tiny deterministic PRNG for workload synthesis.
//!
//! Workloads must be bit-for-bit reproducible across runs and platforms so
//! that commitments verify; `SplitMix64` (Steele, Lea & Flood 2014) is the
//! standard cheap generator for that purpose. It is *not* a cryptographic
//! generator — supervisor sample selection uses `rand`'s `StdRng` instead
//! (see `ugc-core`).

/// SplitMix64: a 64-bit deterministic PRNG with a one-word state.
///
/// # Examples
///
/// ```
/// use ugc_task::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent stream for `(seed, stream)` pairs — used to
    /// give every domain input its own reproducible randomness.
    #[must_use]
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let mut mixer = SplitMix64::new(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Burn one output so that adjacent streams decorrelate.
        let _ = mixer.next_u64();
        mixer
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-shift; bias is < 2^-64, irrelevant for synthesis.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Standard-normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output_for_zero_seed() {
        // Reference value from the SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn streams_differ() {
        let mut s0 = SplitMix64::for_stream(9, 0);
        let mut s1 = SplitMix64::for_stream(9, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut rng = SplitMix64::new(2024);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }
}
