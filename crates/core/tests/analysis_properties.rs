//! Property-based tests for the closed-form analysis module: the formulas
//! must be internally consistent (minimality, monotonicity, identities)
//! over their whole parameter space, not just at the paper's anchors.

use proptest::prelude::*;
use ugc_core::analysis::{
    cbs_traffic_bytes, cheat_success_probability, detection_probability, eq5_holds,
    min_g_cost_for_uncheatability, ni_attack_cost, ni_expected_attempts, rco, rco_from_levels,
    required_sample_size,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn eq3_is_minimal_and_sufficient(r in 0.0f64..0.999, q in 0.0f64..0.999,
                                     eps_exp in 1i32..12) {
        let epsilon = 10f64.powi(-eps_exp);
        prop_assume!(r + (1.0 - r) * q < 1.0);
        let m = required_sample_size(epsilon, r, q).unwrap();
        prop_assert!(cheat_success_probability(r, q, m) <= epsilon,
                     "m={m} insufficient");
        if m > 0 {
            prop_assert!(cheat_success_probability(r, q, m - 1) > epsilon,
                         "m={m} not minimal");
        }
    }

    #[test]
    fn eq2_monotone_in_each_argument(r in 0.01f64..0.99, q in 0.0f64..0.99, m in 1u64..60) {
        let base = cheat_success_probability(r, q, m);
        // More samples → lower survival.
        prop_assert!(cheat_success_probability(r, q, m + 1) <= base);
        // More honesty → higher survival.
        prop_assert!(cheat_success_probability((r + 0.01).min(1.0), q, m) >= base);
        // Better guessing → higher survival.
        prop_assert!(cheat_success_probability(r, (q + 0.01).min(1.0), m) >= base);
    }

    #[test]
    fn detection_is_complement(r in 0.0f64..=1.0, q in 0.0f64..=1.0, m in 0u64..100) {
        let sum = cheat_success_probability(r, q, m) + detection_probability(r, q, m);
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rco_forms_agree(m in 1u64..1000, h in 1u32..40, ell_seed in any::<u32>()) {
        let ell = 1 + ell_seed % h;
        let s = 1u64 << (h - ell + 1);
        prop_assert!((rco(m, s) - rco_from_levels(m, h, ell)).abs() < 1e-12);
    }

    #[test]
    fn rco_halves_per_extra_storage_doubling(m in 1u64..1000, s_bits in 2u32..40) {
        let s = 1u64 << s_bits;
        prop_assert!((rco(m, s) - rco(m, 2 * s) * 2.0).abs() < 1e-15);
    }

    #[test]
    fn eq5_threshold_is_tight(r in 0.3f64..0.99, m in 1u64..40, n_bits in 4u32..30) {
        let n = 1u64 << n_bits;
        let c_min = min_g_cost_for_uncheatability(r, m, n, 1);
        // Strictly above the threshold the inequality holds…
        let above = (c_min.ceil() as u64).saturating_add(1);
        prop_assert!(eq5_holds(r, m, above, n, 1));
        // …and well below it fails (guard against degenerate c_min < 2).
        if c_min >= 4.0 {
            prop_assert!(!eq5_holds(r, m, (c_min / 4.0) as u64, n, 1));
        }
    }

    #[test]
    fn attack_cost_scales_linearly_in_cg(r in 0.3f64..0.95, m in 1u64..30, cg in 1u64..1000) {
        let one = ni_attack_cost(r, m, 1);
        let many = ni_attack_cost(r, m, cg);
        prop_assert!((many / one - cg as f64).abs() < 1e-6);
    }

    #[test]
    fn expected_attempts_match_eq2_inverse(r in 0.1f64..1.0, m in 1u64..40) {
        // 1/r^m is exactly the inverse of Eq. (2) at q = 0.
        let attempts = ni_expected_attempts(r, m);
        let survival = cheat_success_probability(r, 0.0, m);
        prop_assert!((attempts * survival - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cbs_traffic_monotone_in_all_dims(m in 1u64..100, h in 2u32..63,
                                        w in 1u64..64, d in 8u64..64) {
        let base = cbs_traffic_bytes(m, h, w, d);
        prop_assert!(cbs_traffic_bytes(m + 1, h, w, d) >= base);
        prop_assert!(cbs_traffic_bytes(m, h + 1, w, d) >= base);
        prop_assert!(cbs_traffic_bytes(m, h, w + 1, d) >= base);
        prop_assert!(cbs_traffic_bytes(m, h, w, d + 1) >= base);
    }
}
