//! The interactive Commitment-Based Sampling scheme (Section 3).
//!
//! Protocol (Fig. 1 and Section 3.1 of the paper):
//!
//! ```text
//! supervisor                        participant
//!     │  Assign(D) ──────────────────▶ │ evaluate f (or cheat) on D
//!     │                                │ build Merkle tree, Φ(L_i)=f(x_i)
//!     │ ◀───────────────── Commit Φ(R) │
//!     │  Challenge(i_1…i_m) ─────────▶ │ find paths, gather siblings
//!     │ ◀──────────── Proofs + Reports │
//!     │  verify f(x_i), reconstruct R′ │
//!     │  Verdict ────────────────────▶ │
//! ```
//!
//! The participant may keep the full tree (`O(n)` storage) or only its top
//! levels (Section 3.3, [`ParticipantStorage::Partial`]), in which case
//! proving a sample recomputes the `2^ℓ` leaves of the covering subtree —
//! costs this module charges to the participant's ledger from actual call
//! counts.

use crate::sampling::draw_samples;
use crate::scheme::{check_task, materialize, proof_to_wire, verify_sample, Materialized};
use crate::session::{
    drive_participant, drive_supervisor, unexpected, Outbound, ParticipantContext,
    ParticipantSession, SessionOutcome, SupervisorContext, SupervisorSession, VerificationScheme,
};
use crate::{ParticipantStorage, RoundOutcome, SchemeError, Verdict};
use ugc_grid::{duplex, Assignment, CostLedger, Endpoint, Message, SampleProof, WorkerBehaviour};
use ugc_hash::HashFunction;
use ugc_merkle::{LaneWidth, MerkleTree, Parallelism, PartialMerkleTree};
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Below this many leaves a parallel tree build is not worth the thread
/// spawns; the scheme layer falls back to the serial build.
pub(crate) const PARALLEL_BUILD_MIN_LEAVES: usize = 1 << 10;

/// Interactive CBS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbsConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
    /// Number of samples `m`.
    pub samples: usize,
    /// Supervisor sampling seed (a fresh random value in production; a
    /// fixed value in reproducible experiments).
    pub seed: u64,
    /// How many screened reports to audit by recomputation (0 disables;
    /// an extension over the paper — catches the malicious model).
    pub report_audit: usize,
}

/// What the participant learned from its side of the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParticipantRun {
    /// The verdict the supervisor announced.
    pub accepted: bool,
    /// Number of screened reports submitted.
    pub reports_sent: usize,
}

/// The participant's tree, full or partial, behind one proving interface.
pub(crate) enum ParticipantTree<H: HashFunction> {
    Full(MerkleTree<H>),
    Partial(PartialMerkleTree<H>),
}

impl<H: HashFunction> ParticipantTree<H> {
    /// Builds the tree from materialised leaves, charging hash operations.
    ///
    /// Full-storage trees over at least [`PARALLEL_BUILD_MIN_LEAVES`]
    /// leaves build in parallel per `parallelism` (bit-identical roots);
    /// the ledger records both the total hash work and the critical-path
    /// cost actually paid.
    ///
    /// In partial mode the leaves are *dropped* after commitment — that is
    /// the point of Section 3.3 — so proofs later recompute them through
    /// the behaviour (charging `f` again, exactly as the paper accounts).
    pub(crate) fn build(
        leaves: &[Vec<u8>],
        storage: ParticipantStorage,
        parallelism: Parallelism,
        lanes: LaneWidth,
        ledger: &CostLedger,
    ) -> Result<Self, SchemeError> {
        match storage {
            ParticipantStorage::Full => {
                let threads = if parallelism.get() > 1 && leaves.len() >= PARALLEL_BUILD_MIN_LEAVES
                {
                    parallelism
                } else {
                    Parallelism::serial()
                };
                let tree = MerkleTree::build_with(leaves, threads, lanes)?;
                ledger.charge_hash_parallel(tree.hash_ops(), tree.hash_ops_wall());
                Ok(ParticipantTree::Full(tree))
            }
            ParticipantStorage::Partial { subtree_height } => {
                let width = leaves.first().map_or(0, Vec::len);
                let tree =
                    PartialMerkleTree::build(leaves.len() as u64, width, subtree_height, |i| {
                        leaves[i as usize].clone()
                    })?;
                ledger.charge_hash(tree.build_stats().hash_ops);
                Ok(ParticipantTree::Partial(tree))
            }
        }
    }

    pub(crate) fn root(&self) -> H::Digest {
        match self {
            ParticipantTree::Full(t) => t.root(),
            ParticipantTree::Partial(t) => t.root(),
        }
    }

    /// Proves `index`, returning the wire proof with the claimed leaf value.
    ///
    /// Partial mode rebuilds the covering subtree by re-running the
    /// behaviour for its `2^ℓ` leaves, charging the participant's ledger
    /// for the recomputed `f` evaluations and hashes.
    pub(crate) fn prove(
        &self,
        index: u64,
        task: &dyn ComputeTask,
        domain: Domain,
        behaviour: &dyn WorkerBehaviour,
        ledger: &CostLedger,
    ) -> Result<SampleProof, SchemeError> {
        match self {
            ParticipantTree::Full(tree) => {
                let proof = tree.prove(index)?;
                let leaf_value = tree.leaf(index)?.to_vec();
                Ok(proof_to_wire(&proof, leaf_value))
            }
            ParticipantTree::Partial(tree) => {
                let mut sampled_value: Option<Vec<u8>> = None;
                let (proof, stats) = tree.prove_with(index, |i| {
                    let value = behaviour.leaf_value(task, domain, i, ledger);
                    if i == index {
                        sampled_value = Some(value.clone());
                    }
                    value
                })?;
                ledger.charge_hash(stats.hash_ops);
                let leaf_value = sampled_value.expect("provider visited the sampled leaf");
                Ok(proof_to_wire(&proof, leaf_value))
            }
        }
    }
}

/// The interactive CBS scheme as a [`VerificationScheme`]: commit →
/// challenge → sample proofs → verdict, with the samples drawn by the
/// supervisor *after* the commitment arrives (Section 3.1).
///
/// This is the session-engine face of the scheme; `samples`, `seed` and
/// `report_audit` mean exactly what they do on [`CbsConfig`] (the wire
/// task id comes from the session context instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbsScheme {
    /// Number of samples `m`.
    pub samples: usize,
    /// Supervisor sampling seed.
    pub seed: u64,
    /// Report-audit size (0 disables).
    pub report_audit: usize,
}

impl<H: HashFunction> VerificationScheme<H> for CbsScheme {
    fn name(&self) -> &'static str {
        "cbs"
    }

    fn supervisor_session<'a>(
        &'a self,
        ctx: SupervisorContext<'a>,
    ) -> Box<dyn SupervisorSession + 'a> {
        Box::new(CbsSupervisorSession::<H> {
            scheme: *self,
            task_id: ctx.task_ids.first().copied().unwrap_or_default(),
            task: ctx.task,
            screener: ctx.screener,
            domain: ctx.domain,
            ledger: ctx.ledger,
            state: SupState::AwaitCommit,
            outcome: None,
        })
    }

    fn participant_session<'a>(
        &'a self,
        ctx: ParticipantContext<'a>,
    ) -> Box<dyn ParticipantSession + 'a> {
        Box::new(CbsParticipantSession::<H>::new(ctx))
    }
}

enum SupState<H: HashFunction> {
    AwaitCommit,
    AwaitProofs {
        root: H::Digest,
        samples: Vec<u64>,
    },
    AwaitReports {
        root: H::Digest,
        samples: Vec<u64>,
        proofs: Vec<SampleProof>,
    },
    Done,
}

struct CbsSupervisorSession<'a, H: HashFunction> {
    scheme: CbsScheme,
    task_id: u64,
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    domain: Domain,
    ledger: CostLedger,
    state: SupState<H>,
    outcome: Option<SessionOutcome>,
}

impl<H: HashFunction> SupervisorSession for CbsSupervisorSession<'_, H> {
    fn start(&mut self) -> Result<Vec<Outbound>, SchemeError> {
        if self.scheme.samples == 0 {
            return Err(SchemeError::InvalidConfig {
                reason: "samples must be positive",
            });
        }
        Ok(vec![(
            0,
            Message::Assign(Assignment {
                task_id: self.task_id,
                domain: self.domain,
            }),
        )])
    }

    fn on_message(&mut self, _slot: usize, msg: Message) -> Result<Vec<Outbound>, SchemeError> {
        match std::mem::replace(&mut self.state, SupState::Done) {
            // Step 1→2: commitment first, then reveal the samples.
            SupState::AwaitCommit => {
                let Message::Commit { task_id, root } = msg else {
                    return unexpected("Commit", &msg);
                };
                check_task(self.task_id, task_id)?;
                let root = H::digest_from_bytes(&root).ok_or(SchemeError::MalformedPayload {
                    what: "commitment root",
                })?;
                let samples =
                    draw_samples(self.scheme.seed, self.scheme.samples, self.domain.len());
                let challenge = Message::Challenge {
                    task_id: self.task_id,
                    samples: samples.clone(),
                };
                self.state = SupState::AwaitProofs { root, samples };
                Ok(vec![(0, challenge)])
            }
            // Step 3: the proofs land, the reports follow.
            SupState::AwaitProofs { root, samples } => {
                let Message::Proofs { task_id, proofs } = msg else {
                    return unexpected("Proofs", &msg);
                };
                check_task(self.task_id, task_id)?;
                self.state = SupState::AwaitReports {
                    root,
                    samples,
                    proofs,
                };
                Ok(Vec::new())
            }
            // Step 4: verify everything, announce the verdict.
            SupState::AwaitReports {
                root,
                samples,
                proofs,
            } => {
                let Message::Reports { task_id, reports } = msg else {
                    return unexpected("Reports", &msg);
                };
                check_task(self.task_id, task_id)?;
                let verdict = verify_round::<H>(
                    self.task,
                    self.screener,
                    self.domain,
                    &root,
                    &samples,
                    &proofs,
                    &reports,
                    self.scheme.report_audit,
                    self.scheme.seed,
                    &self.ledger,
                )?;
                let verdict_msg = Message::Verdict {
                    task_id: self.task_id,
                    accepted: verdict.is_accepted(),
                };
                self.outcome = Some(SessionOutcome {
                    verdict,
                    reports: reports
                        .into_iter()
                        .map(|(input, payload)| ScreenReport { input, payload })
                        .collect(),
                });
                Ok(vec![(0, verdict_msg)])
            }
            SupState::Done => unexpected("nothing (session finished)", &msg),
        }
    }

    fn take_outcome(&mut self) -> Option<SessionOutcome> {
        self.outcome.take()
    }
}

enum PartState<H: HashFunction> {
    AwaitAssign,
    AwaitChallenge {
        task_id: u64,
        domain: Domain,
        tree: ParticipantTree<H>,
        reports: Vec<ScreenReport>,
    },
    AwaitVerdict {
        task_id: u64,
    },
    Done(bool),
}

pub(crate) struct CbsParticipantSession<'a, H: HashFunction> {
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    behaviour: &'a dyn WorkerBehaviour,
    storage: ParticipantStorage,
    parallelism: Parallelism,
    lanes: LaneWidth,
    ledger: CostLedger,
    state: PartState<H>,
    reports_sent: usize,
}

impl<'a, H: HashFunction> CbsParticipantSession<'a, H> {
    pub(crate) fn new(ctx: ParticipantContext<'a>) -> Self {
        CbsParticipantSession {
            task: ctx.task,
            screener: ctx.screener,
            behaviour: ctx.behaviour,
            storage: ctx.storage,
            parallelism: ctx.parallelism,
            lanes: ctx.lanes,
            ledger: ctx.ledger,
            state: PartState::AwaitAssign,
            reports_sent: 0,
        }
    }

    pub(crate) fn reports_sent(&self) -> usize {
        self.reports_sent
    }
}

impl<H: HashFunction> ParticipantSession for CbsParticipantSession<'_, H> {
    fn on_message(&mut self, msg: Message) -> Result<Vec<Message>, SchemeError> {
        match std::mem::replace(&mut self.state, PartState::AwaitAssign) {
            // Step 1: evaluate (honestly or not), build the tree, commit.
            PartState::AwaitAssign => {
                let Message::Assign(assignment) = msg else {
                    return unexpected("Assign", &msg);
                };
                let domain = assignment.domain;
                let task_id = assignment.task_id;
                let Materialized { leaves, reports } = materialize(
                    self.task,
                    self.screener,
                    domain,
                    self.behaviour,
                    &self.ledger,
                );
                let tree = ParticipantTree::<H>::build(
                    &leaves,
                    self.storage,
                    self.parallelism,
                    self.lanes,
                    &self.ledger,
                )?;
                if matches!(self.storage, ParticipantStorage::Partial { .. }) {
                    // Section 3.3: the full leaf set is not retained.
                    drop(leaves);
                }
                let commit = Message::Commit {
                    task_id,
                    root: tree.root().as_ref().to_vec(),
                };
                self.state = PartState::AwaitChallenge {
                    task_id,
                    domain,
                    tree,
                    reports,
                };
                Ok(vec![commit])
            }
            // Step 3: prove honesty on every sample; ship proofs + reports.
            PartState::AwaitChallenge {
                task_id,
                domain,
                tree,
                reports,
            } => {
                let Message::Challenge {
                    task_id: tid,
                    samples,
                } = msg
                else {
                    return unexpected("Challenge", &msg);
                };
                check_task(task_id, tid)?;
                let mut proofs = Vec::with_capacity(samples.len());
                for &index in &samples {
                    proofs.push(tree.prove(
                        index,
                        self.task,
                        domain,
                        self.behaviour,
                        &self.ledger,
                    )?);
                }
                self.reports_sent = reports.len();
                let out = vec![
                    Message::Proofs { task_id, proofs },
                    Message::Reports {
                        task_id,
                        reports: reports.into_iter().map(|r| (r.input, r.payload)).collect(),
                    },
                ];
                self.state = PartState::AwaitVerdict { task_id };
                Ok(out)
            }
            // Step 4 happened at the supervisor; record the verdict.
            PartState::AwaitVerdict { task_id } => {
                let Message::Verdict {
                    task_id: tid,
                    accepted,
                } = msg
                else {
                    return unexpected("Verdict", &msg);
                };
                check_task(task_id, tid)?;
                self.state = PartState::Done(accepted);
                Ok(Vec::new())
            }
            done @ PartState::Done(_) => {
                self.state = done;
                unexpected("nothing (session finished)", &msg)
            }
        }
    }

    fn finished(&self) -> Option<bool> {
        match self.state {
            PartState::Done(accepted) => Some(accepted),
            _ => None,
        }
    }
}

/// Runs the participant side of interactive CBS over `endpoint`, building
/// the commitment tree with the default parallelism (one thread per
/// available core); see [`participant_cbs_with`].
///
/// # Errors
///
/// Transport failures, malformed peer messages, or Merkle errors.
pub fn participant_cbs<H, T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    storage: ParticipantStorage,
    ledger: &CostLedger,
) -> Result<ParticipantRun, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    participant_cbs_with::<H, T, S, B>(
        endpoint,
        task,
        screener,
        behaviour,
        storage,
        Parallelism::default(),
        LaneWidth::default(),
        ledger,
    )
}

/// Runs the participant side of interactive CBS over `endpoint`.
///
/// A thin wrapper over the session engine's state machine: it builds the
/// scheme's [`ParticipantSession`] and drives it to completion with
/// blocking receives (Assign → Commit → Challenge → Proofs → Verdict).
/// All computation costs are charged to `ledger`; the commitment tree
/// builds with up to `parallelism` threads and the digest lane width
/// `lanes` (bit-identical to the serial scalar build at any setting).
///
/// # Errors
///
/// Transport failures, malformed peer messages, or Merkle errors.
#[allow(clippy::too_many_arguments)]
pub fn participant_cbs_with<H, T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    storage: ParticipantStorage,
    parallelism: Parallelism,
    lanes: LaneWidth,
    ledger: &CostLedger,
) -> Result<ParticipantRun, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let mut session = CbsParticipantSession::<H>::new(ParticipantContext {
        task,
        screener,
        behaviour,
        storage,
        parallelism,
        lanes,
        ledger: ledger.clone(),
    });
    let accepted = drive_participant(endpoint, &mut session)?;
    Ok(ParticipantRun {
        accepted,
        reports_sent: session.reports_sent(),
    })
}

/// Runs the supervisor side of interactive CBS over `endpoint` — a thin
/// wrapper that drives the scheme's [`SupervisorSession`] to completion
/// with blocking receives.
///
/// Returns the verdict and the screened reports received (reports are kept
/// even on rejection, for inspection; a production supervisor would
/// discard them).
///
/// # Errors
///
/// Transport failures, malformed peer messages, or invalid configuration
/// (`samples == 0`).
pub fn supervisor_cbs<H, T, S>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    domain: Domain,
    config: &CbsConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    let scheme = CbsScheme {
        samples: config.samples,
        seed: config.seed,
        report_audit: config.report_audit,
    };
    let mut session = VerificationScheme::<H>::supervisor_session(
        &scheme,
        SupervisorContext {
            task,
            screener,
            domain,
            task_ids: vec![config.task_id],
            ledger: ledger.clone(),
        },
    );
    let outcome = drive_supervisor(&[endpoint], session.as_mut())?;
    Ok((outcome.verdict, outcome.reports))
}

/// The supervisor's Step 4 as a standalone building block: checks that
/// `proofs` answer exactly `samples` against the commitment `root`, that
/// every claimed `f(x)` is correct, that every reconstruction matches the
/// root, and (optionally) audits the screened `reports`.
///
/// Exposed so custom supervisors — e.g. one behind a
/// [`Broker`](ugc_grid::Broker) driving many participants over shared
/// endpoints — can reuse the verification logic outside
/// [`supervisor_cbs`]/[`supervisor_ni_cbs`](crate::scheme::ni_cbs::supervisor_ni_cbs).
///
/// # Errors
///
/// [`SchemeError::ProofCountMismatch`] or malformed-proof errors; cheating
/// is reported through the `Ok` verdict, not as an error.
#[allow(clippy::too_many_arguments)]
pub fn verify_round<H: HashFunction>(
    task: &dyn ComputeTask,
    screener: &dyn Screener,
    domain: Domain,
    root: &H::Digest,
    samples: &[u64],
    proofs: &[SampleProof],
    reports: &[(u64, Vec<u8>)],
    report_audit: usize,
    seed: u64,
    ledger: &CostLedger,
) -> Result<Verdict, SchemeError> {
    if proofs.len() != samples.len() {
        return Err(SchemeError::ProofCountMismatch {
            expected: samples.len(),
            got: proofs.len(),
        });
    }
    for (expected_index, wire) in samples.iter().zip(proofs) {
        if wire.index != *expected_index {
            return Ok(Verdict::WrongResult {
                sample: *expected_index,
            });
        }
        if let Err(verdict) = verify_sample::<H>(task, domain, root, wire, ledger)? {
            return Ok(verdict);
        }
    }
    if let Some(verdict) =
        crate::scheme::audit_reports(task, screener, domain, reports, report_audit, seed, ledger)
    {
        return Ok(verdict);
    }
    Ok(Verdict::Accepted)
}

/// Runs a complete interactive CBS round in-process with the default
/// tree-build parallelism (one thread per available core); see
/// [`run_cbs_with`].
///
/// # Errors
///
/// As [`run_cbs_with`].
pub fn run_cbs<H, T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    storage: ParticipantStorage,
    config: &CbsConfig,
) -> Result<RoundOutcome, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    run_cbs_with::<H, T, S, B>(
        task,
        screener,
        domain,
        behaviour,
        storage,
        Parallelism::default(),
        LaneWidth::default(),
        config,
    )
}

/// Runs a complete interactive CBS round in-process: supervisor on the
/// calling thread, participant on a scoped thread, duplex link between
/// them. The participant's commitment tree builds with up to
/// `parallelism` threads and the digest lane width `lanes`. Returns full
/// cost and traffic accounting.
///
/// # Errors
///
/// Propagates the supervisor's error if both sides fail (the participant's
/// failure is almost always a consequence).
#[allow(clippy::too_many_arguments)]
pub fn run_cbs_with<H, T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    storage: ParticipantStorage,
    parallelism: Parallelism,
    lanes: LaneWidth,
    config: &CbsConfig,
) -> Result<RoundOutcome, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let (sup_ep, part_ep) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new();

    let (sup_result, part_result, link) = std::thread::scope(|scope| {
        // The participant owns its endpoint so that an early exit (error or
        // completion) drops it and unblocks a supervisor mid-recv.
        let thread_ledger = part_ledger.clone();
        let part_handle = scope.spawn(move || {
            participant_cbs_with::<H, T, S, B>(
                &part_ep,
                task,
                screener,
                behaviour,
                storage,
                parallelism,
                lanes,
                &thread_ledger,
            )
        });
        let sup = supervisor_cbs::<H, T, S>(&sup_ep, task, screener, domain, config, &sup_ledger);
        let link = sup_ep.stats();
        // Drop the supervisor endpoint before joining: if the supervisor
        // bailed early the participant is still blocked on recv and must
        // observe the disconnect, or this join would deadlock.
        drop(sup_ep);
        let part = part_handle.join().expect("participant thread panicked");
        (sup, part, link)
    });

    let (verdict, reports) = sup_result?;
    let _ = part_result?; // participant errors surface only if supervisor succeeded
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, MaliciousWorker, SemiHonestCheater};
    use ugc_hash::{Md5, Sha256};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(m: usize, seed: u64) -> CbsConfig {
        CbsConfig {
            task_id: 7,
            samples: m,
            seed,
            report_audit: 0,
        }
    }

    #[test]
    fn honest_participant_always_accepted() {
        // Theorem 1 (soundness), end to end, across seeds and domain sizes.
        for (n, seed) in [(16u64, 1u64), (100, 2), (257, 3)] {
            let task = PasswordSearch::with_hidden_password(9, 3);
            let screener = task.match_screener();
            let outcome = run_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                Domain::new(0, n),
                &HonestWorker,
                ParticipantStorage::Full,
                &config(10, seed),
            )
            .unwrap();
            assert!(outcome.accepted, "honest rejected at n={n} seed={seed}");
            assert_eq!(outcome.verdict, Verdict::Accepted);
        }
    }

    #[test]
    fn honest_reports_reach_supervisor() {
        let task = PasswordSearch::with_hidden_password(9, 37);
        let screener = task.match_screener();
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(5, 1),
        )
        .unwrap();
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(outcome.reports[0].input, 37);
    }

    #[test]
    fn gross_cheater_caught() {
        let task = PasswordSearch::with_hidden_password(9, 3);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.1, CheatSelection::Scattered, ZeroGuesser::new(5), 11);
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 256),
            &cheater,
            ParticipantStorage::Full,
            &config(20, 42),
        )
        .unwrap();
        assert!(!outcome.accepted);
        assert!(matches!(outcome.verdict, Verdict::WrongResult { .. }));
    }

    #[test]
    fn partial_storage_equivalent_verdicts() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        for storage in [
            ParticipantStorage::Full,
            ParticipantStorage::Partial { subtree_height: 2 },
            ParticipantStorage::Partial { subtree_height: 5 },
        ] {
            let outcome = run_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                Domain::new(0, 128),
                &HonestWorker,
                storage,
                &config(8, 9),
            )
            .unwrap();
            assert!(outcome.accepted, "storage {storage:?}");
        }
    }

    #[test]
    fn partial_storage_charges_rebuild_f_evals() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        let full = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 128),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(8, 9),
        )
        .unwrap();
        let partial = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 128),
            &HonestWorker,
            ParticipantStorage::Partial { subtree_height: 4 },
            &config(8, 9),
        )
        .unwrap();
        // Partial mode pays extra f evaluations: up to m × 2^ℓ beyond the
        // base n (fewer when samples share subtrees).
        assert_eq!(full.participant_costs.f_evals, 128);
        assert!(partial.participant_costs.f_evals > 128);
        assert!(partial.participant_costs.f_evals <= 128 + 8 * 16);
    }

    #[test]
    fn cheater_with_partial_storage_still_caught() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(5), 3);
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 128),
            &cheater,
            ParticipantStorage::Partial { subtree_height: 3 },
            &config(16, 4),
        )
        .unwrap();
        assert!(!outcome.accepted);
    }

    #[test]
    fn parallel_tree_build_wired_through_run_cbs_with() {
        // Domain ≥ PARALLEL_BUILD_MIN_LEAVES with >1 thread takes the
        // parallel branch of ParticipantTree::build; the verdict and the
        // total hash count must match the serial round, while the wall
        // accounting must show the split.
        let task = PasswordSearch::with_hidden_password(4, 99);
        let screener = task.match_screener();
        let domain = Domain::new(0, PARALLEL_BUILD_MIN_LEAVES as u64 * 2);
        let serial = run_cbs_with::<Sha256, _, _, _>(
            &task,
            &screener,
            domain,
            &HonestWorker,
            ParticipantStorage::Full,
            Parallelism::serial(),
            LaneWidth::default(),
            &config(8, 3),
        )
        .unwrap();
        let parallel = run_cbs_with::<Sha256, _, _, _>(
            &task,
            &screener,
            domain,
            &HonestWorker,
            ParticipantStorage::Full,
            Parallelism::threads(4),
            LaneWidth::default(),
            &config(8, 3),
        )
        .unwrap();
        assert!(serial.accepted && parallel.accepted);
        assert_eq!(
            serial.participant_costs.hash_ops, parallel.participant_costs.hash_ops,
            "total hash work must not depend on the thread count"
        );
        assert_eq!(
            serial.participant_costs.hash_wall_ops,
            serial.participant_costs.hash_ops
        );
        assert!(
            parallel.participant_costs.hash_wall_ops < parallel.participant_costs.hash_ops,
            "parallel build must record a shorter critical path: wall {} vs total {}",
            parallel.participant_costs.hash_wall_ops,
            parallel.participant_costs.hash_ops
        );
    }

    #[test]
    fn lane_width_does_not_change_verdict_or_costs() {
        // LaneWidth is execution-only: accounting and verdict are
        // identical at every width, serial or parallel.
        let task = PasswordSearch::with_hidden_password(4, 17);
        let screener = task.match_screener();
        let reference = run_cbs_with::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 300),
            &HonestWorker,
            ParticipantStorage::Full,
            Parallelism::serial(),
            LaneWidth::Scalar,
            &config(8, 3),
        )
        .unwrap();
        for lanes in [LaneWidth::X4, LaneWidth::X8] {
            let outcome = run_cbs_with::<Sha256, _, _, _>(
                &task,
                &screener,
                Domain::new(0, 300),
                &HonestWorker,
                ParticipantStorage::Full,
                Parallelism::serial(),
                lanes,
                &config(8, 3),
            )
            .unwrap();
            assert_eq!(outcome.verdict, reference.verdict, "lanes {lanes}");
            assert_eq!(
                outcome.participant_costs, reference.participant_costs,
                "lanes {lanes}"
            );
            assert_eq!(
                outcome.supervisor_link, reference.supervisor_link,
                "lanes {lanes}"
            );
        }
    }

    #[test]
    fn md5_variant_works() {
        let task = PasswordSearch::with_hidden_password(2, 4);
        let screener = task.match_screener();
        let outcome = run_cbs::<Md5, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(6, 5),
        )
        .unwrap();
        assert!(outcome.accepted);
    }

    #[test]
    fn malicious_worker_survives_without_audit_caught_with() {
        // The malicious model does all the work, so pure CBS accepts it…
        let task = PasswordSearch::with_hidden_password(3, 10);
        let screener = ugc_task::AcceptAllScreener;
        let malicious = MaliciousWorker::new(1.0, 8);
        let no_audit = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &malicious,
            ParticipantStorage::Full,
            &config(10, 6),
        )
        .unwrap();
        assert!(no_audit.accepted, "CBS alone cannot see report corruption");
        // …but the report audit extension catches the corrupted payloads.
        let mut audited_config = config(10, 6);
        audited_config.report_audit = 4;
        let audited = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &malicious,
            ParticipantStorage::Full,
            &audited_config,
        )
        .unwrap();
        assert!(!audited.accepted);
        assert!(matches!(audited.verdict, Verdict::ReportMismatch { .. }));
    }

    #[test]
    fn communication_is_logarithmic_not_linear() {
        let task = PasswordSearch::with_hidden_password(4, 1);
        let screener = task.match_screener();
        let mut received = Vec::new();
        for bits in [8u32, 10, 12] {
            let outcome = run_cbs::<Sha256, _, _, _>(
                &task,
                &screener,
                Domain::new(0, 1 << bits),
                &HonestWorker,
                ParticipantStorage::Full,
                &config(10, 2),
            )
            .unwrap();
            received.push(outcome.supervisor_link.bytes_received);
        }
        // 16× the domain should grow traffic by ~(height ratio), not 16×.
        let growth = received[2] as f64 / received[0] as f64;
        assert!(
            growth < 2.0,
            "CBS traffic grew {growth:.2}× for a 16× domain"
        );
    }

    #[test]
    fn zero_samples_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let err = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 16),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(0, 1),
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn supervisor_verification_cost_scales_with_m() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let small = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 256),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(5, 3),
        )
        .unwrap();
        let large = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 256),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(50, 3),
        )
        .unwrap();
        assert_eq!(small.supervisor_costs.verify_ops, 5);
        assert_eq!(large.supervisor_costs.verify_ops, 50);
        assert_eq!(large.supervisor_costs.f_evals, 50 * task.unit_cost());
        // The supervisor never evaluates f on the whole domain.
        assert!(large.supervisor_costs.f_evals < 256);
    }
}
