//! The naive sampling scheme (Section 1): upload everything, spot-check.
//!
//! The participant returns **all** `n` results (`O(n)` communication —
//! the cost CBS eliminates); the supervisor re-computes `m` random samples
//! and compares. Detection probability is identical to CBS
//! (`1 − (r + (1−r)q)^m`); only the costs differ, which is exactly what
//! the communication experiments measure.

use crate::sampling::draw_samples;
use crate::scheme::{check_task, materialize, Materialized};
use crate::session::{
    drive_participant, drive_supervisor, unexpected, Outbound, ParticipantContext,
    ParticipantSession, SessionOutcome, SupervisorContext, SupervisorSession, VerificationScheme,
};
use crate::{RoundOutcome, SchemeError, Verdict};
use ugc_grid::{duplex, Assignment, CostLedger, Endpoint, Message, WorkerBehaviour};
use ugc_hash::HashFunction;
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Naive-sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
    /// Number of spot-checked samples `m`.
    pub samples: usize,
    /// Supervisor sampling seed.
    pub seed: u64,
}

/// The naive sampling scheme as a [`VerificationScheme`]: flat `O(n)`
/// upload, spot-check `m` samples by recomputation.
///
/// Parameters mirror [`NaiveConfig`] minus the task id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveScheme {
    /// Number of spot-checked samples `m`.
    pub samples: usize,
    /// Supervisor sampling seed.
    pub seed: u64,
}

impl<H: HashFunction> VerificationScheme<H> for NaiveScheme {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn supervisor_session<'a>(
        &'a self,
        ctx: SupervisorContext<'a>,
    ) -> Box<dyn SupervisorSession + 'a> {
        Box::new(NaiveSupervisorSession {
            scheme: *self,
            task_id: ctx.task_ids.first().copied().unwrap_or_default(),
            task: ctx.task,
            screener: ctx.screener,
            domain: ctx.domain,
            ledger: ctx.ledger,
            done: false,
            outcome: None,
        })
    }

    fn participant_session<'a>(
        &'a self,
        ctx: ParticipantContext<'a>,
    ) -> Box<dyn ParticipantSession + 'a> {
        Box::new(FlatUploadParticipantSession::new(ctx))
    }
}

struct NaiveSupervisorSession<'a> {
    scheme: NaiveScheme,
    task_id: u64,
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    domain: Domain,
    ledger: CostLedger,
    done: bool,
    outcome: Option<SessionOutcome>,
}

impl SupervisorSession for NaiveSupervisorSession<'_> {
    fn start(&mut self) -> Result<Vec<Outbound>, SchemeError> {
        if self.scheme.samples == 0 {
            return Err(SchemeError::InvalidConfig {
                reason: "samples must be positive",
            });
        }
        Ok(vec![(
            0,
            Message::Assign(Assignment {
                task_id: self.task_id,
                domain: self.domain,
            }),
        )])
    }

    fn on_message(&mut self, _slot: usize, msg: Message) -> Result<Vec<Outbound>, SchemeError> {
        if self.done {
            return unexpected("nothing (session finished)", &msg);
        }
        let Message::AllResults {
            task_id,
            leaf_width,
            data,
        } = msg
        else {
            return unexpected("AllResults", &msg);
        };
        check_task(self.task_id, task_id)?;
        let width = leaf_width as usize;
        let (verdict, reports) = check_flat_upload(
            self.task,
            self.screener,
            self.domain,
            width,
            &data,
            self.scheme.samples,
            self.scheme.seed,
            &self.ledger,
        )?;
        self.done = true;
        let verdict_msg = Message::Verdict {
            task_id: self.task_id,
            accepted: verdict.is_accepted(),
        };
        self.outcome = Some(SessionOutcome { verdict, reports });
        Ok(vec![(0, verdict_msg)])
    }

    fn take_outcome(&mut self) -> Option<SessionOutcome> {
        self.outcome.take()
    }
}

/// The supervisor's naive-sampling check as a building block: validate the
/// flat layout, spot-check `m` samples by recomputation, screen the
/// verified results locally.
#[allow(clippy::too_many_arguments)]
fn check_flat_upload(
    task: &dyn ComputeTask,
    screener: &dyn Screener,
    domain: Domain,
    width: usize,
    data: &[u8],
    samples: usize,
    seed: u64,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError> {
    if width != task.output_width() || data.len() as u64 != domain.len() * width as u64 {
        return Err(SchemeError::MalformedPayload {
            what: "flat results layout",
        });
    }
    let leaf = |i: u64| &data[(i as usize) * width..(i as usize + 1) * width];

    // Spot-check m samples by recomputation.
    let drawn = draw_samples(seed, samples, domain.len());
    let mut verdict = Verdict::Accepted;
    for &i in &drawn {
        let x = domain.input(i).expect("sample within domain");
        ledger.charge_verify(1);
        if !task.cheap_verification() {
            ledger.charge_f(task.unit_cost());
        }
        if !task.verify(x, leaf(i)) {
            verdict = Verdict::WrongResult { sample: i };
            break;
        }
    }
    // With every result in hand, the supervisor screens locally.
    let mut reports = Vec::new();
    if verdict.is_accepted() {
        for i in 0..domain.len() {
            let x = domain.input(i).expect("index within domain");
            if let Some(report) = screener.screen(x, leaf(i)) {
                reports.push(report);
            }
        }
    }
    Ok((verdict, reports))
}

enum FlatState {
    AwaitAssign,
    AwaitVerdict { task_id: u64 },
    Done(bool),
}

/// The participant session shared by every flat-upload scheme (naive
/// sampling and the double-check replicas): evaluate the behaviour over
/// the domain, upload all `n` results, await the verdict.
pub(crate) struct FlatUploadParticipantSession<'a> {
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    behaviour: &'a dyn WorkerBehaviour,
    ledger: CostLedger,
    state: FlatState,
}

impl<'a> FlatUploadParticipantSession<'a> {
    pub(crate) fn new(ctx: ParticipantContext<'a>) -> Self {
        FlatUploadParticipantSession {
            task: ctx.task,
            screener: ctx.screener,
            behaviour: ctx.behaviour,
            ledger: ctx.ledger,
            state: FlatState::AwaitAssign,
        }
    }
}

impl ParticipantSession for FlatUploadParticipantSession<'_> {
    fn on_message(&mut self, msg: Message) -> Result<Vec<Message>, SchemeError> {
        match std::mem::replace(&mut self.state, FlatState::AwaitAssign) {
            FlatState::AwaitAssign => {
                let Message::Assign(assignment) = msg else {
                    return unexpected("Assign", &msg);
                };
                let domain = assignment.domain;
                let task_id = assignment.task_id;
                // The participant still screens locally (the supervisor
                // will anyway), but the defining trait is the flat upload.
                let Materialized { leaves, .. } = materialize(
                    self.task,
                    self.screener,
                    domain,
                    self.behaviour,
                    &self.ledger,
                );
                let width = self.task.output_width();
                let mut data = Vec::with_capacity(leaves.len() * width);
                for leaf in &leaves {
                    data.extend_from_slice(leaf);
                }
                self.state = FlatState::AwaitVerdict { task_id };
                Ok(vec![Message::AllResults {
                    task_id,
                    leaf_width: width as u32,
                    data,
                }])
            }
            FlatState::AwaitVerdict { task_id } => {
                let Message::Verdict {
                    task_id: tid,
                    accepted,
                } = msg
                else {
                    return unexpected("Verdict", &msg);
                };
                check_task(task_id, tid)?;
                self.state = FlatState::Done(accepted);
                Ok(Vec::new())
            }
            done @ FlatState::Done(_) => {
                self.state = done;
                unexpected("nothing (session finished)", &msg)
            }
        }
    }

    fn finished(&self) -> Option<bool> {
        match self.state {
            FlatState::Done(accepted) => Some(accepted),
            _ => None,
        }
    }
}

/// Runs the participant side: evaluate and upload every result. A thin
/// wrapper driving the shared flat-upload [`ParticipantSession`].
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn participant_naive<T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let mut session = FlatUploadParticipantSession::new(ParticipantContext {
        task,
        screener,
        behaviour,
        storage: crate::ParticipantStorage::Full,
        parallelism: ugc_merkle::Parallelism::serial(),
        lanes: ugc_merkle::LaneWidth::default(),
        ledger: ledger.clone(),
    });
    drive_participant(endpoint, &mut session)
}

/// Runs the supervisor side: receive the flat upload, spot-check `m`
/// samples by recomputation, screen the (verified) results itself. A thin
/// wrapper driving the scheme's [`SupervisorSession`].
///
/// # Errors
///
/// Transport failures, malformed peer messages, or invalid configuration.
pub fn supervisor_naive<T, S>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    domain: Domain,
    config: &NaiveConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    T: ComputeTask,
    S: Screener,
{
    let scheme = NaiveScheme {
        samples: config.samples,
        seed: config.seed,
    };
    // The scheme is hash-free; instantiate its trait face with any digest.
    let mut session = VerificationScheme::<ugc_hash::Sha256>::supervisor_session(
        &scheme,
        SupervisorContext {
            task,
            screener,
            domain,
            task_ids: vec![config.task_id],
            ledger: ledger.clone(),
        },
    );
    let outcome = drive_supervisor(&[endpoint], session.as_mut())?;
    Ok((outcome.verdict, outcome.reports))
}

/// Runs a complete naive-sampling round in-process.
///
/// # Errors
///
/// Propagates the supervisor's error if both sides fail.
pub fn run_naive<T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    config: &NaiveConfig,
) -> Result<RoundOutcome, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let (sup_ep, part_ep) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new();

    let (sup_result, part_result, link) = std::thread::scope(|scope| {
        // The participant owns its endpoint so that an early exit (error or
        // completion) drops it and unblocks a supervisor mid-recv.
        let thread_ledger = part_ledger.clone();
        let part_handle = scope
            .spawn(move || participant_naive(&part_ep, task, screener, behaviour, &thread_ledger));
        let sup = supervisor_naive(&sup_ep, task, screener, domain, config, &sup_ledger);
        let link = sup_ep.stats();
        // Unblock a waiting participant if the supervisor bailed early.
        drop(sup_ep);
        let part = part_handle.join().expect("participant thread panicked");
        (sup, part, link)
    });

    let (verdict, reports) = sup_result?;
    let _ = part_result?;
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(m: usize, seed: u64) -> NaiveConfig {
        NaiveConfig {
            task_id: 2,
            samples: m,
            seed,
        }
    }

    #[test]
    fn honest_accepted_with_reports() {
        let task = PasswordSearch::with_hidden_password(3, 40);
        let screener = task.match_screener();
        let outcome = run_naive(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &config(8, 1),
        )
        .unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(outcome.reports[0].input, 40);
    }

    #[test]
    fn cheater_caught_like_cbs() {
        let task = PasswordSearch::with_hidden_password(3, 40);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(7), 5);
        let outcome = run_naive(
            &task,
            &screener,
            Domain::new(0, 128),
            &cheater,
            &config(16, 3),
        )
        .unwrap();
        assert!(!outcome.accepted);
        assert!(matches!(outcome.verdict, Verdict::WrongResult { .. }));
    }

    #[test]
    fn upload_is_linear_in_n() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let mut bytes = Vec::new();
        for bits in [6u32, 8] {
            let outcome = run_naive(
                &task,
                &screener,
                Domain::new(0, 1 << bits),
                &HonestWorker,
                &config(4, 1),
            )
            .unwrap();
            bytes.push(outcome.supervisor_link.bytes_received);
        }
        // 4× the domain → ≈4× the upload (the flat data dominates).
        let growth = bytes[1] as f64 / bytes[0] as f64;
        assert!(
            (3.0..5.0).contains(&growth),
            "naive upload growth {growth:.2}× for 4× domain"
        );
    }

    #[test]
    fn layout_mismatch_is_protocol_error() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let domain = Domain::new(0, 16);
        let (sup_ep, part_ep) = duplex();
        let ledger = CostLedger::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _ = part_ep.recv();
                part_ep
                    .send(&Message::AllResults {
                        task_id: 2,
                        leaf_width: 16,
                        data: vec![0; 5], // wrong length
                    })
                    .unwrap();
            });
            let screener = task.match_screener();
            let err = supervisor_naive(&sup_ep, &task, &screener, domain, &config(4, 1), &ledger)
                .unwrap_err();
            assert_eq!(
                err,
                SchemeError::MalformedPayload {
                    what: "flat results layout"
                }
            );
        });
    }

    #[test]
    fn supervisor_work_is_m_not_n() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let outcome = run_naive(
            &task,
            &screener,
            Domain::new(0, 1 << 10),
            &HonestWorker,
            &config(8, 2),
        )
        .unwrap();
        assert_eq!(outcome.supervisor_costs.f_evals, 8 * task.unit_cost());
        assert_eq!(outcome.supervisor_costs.verify_ops, 8);
    }
}
