//! The naive sampling scheme (Section 1): upload everything, spot-check.
//!
//! The participant returns **all** `n` results (`O(n)` communication —
//! the cost CBS eliminates); the supervisor re-computes `m` random samples
//! and compares. Detection probability is identical to CBS
//! (`1 − (r + (1−r)q)^m`); only the costs differ, which is exactly what
//! the communication experiments measure.

use crate::sampling::draw_samples;
use crate::scheme::{check_task, materialize, recv_matching, Materialized};
use crate::{RoundOutcome, SchemeError, Verdict};
use ugc_grid::{duplex, Assignment, CostLedger, Endpoint, Message, WorkerBehaviour};
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Naive-sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
    /// Number of spot-checked samples `m`.
    pub samples: usize,
    /// Supervisor sampling seed.
    pub seed: u64,
}

/// Runs the participant side: evaluate and upload every result.
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn participant_naive<T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let assignment = recv_matching(endpoint, "Assign", |msg| match msg {
        Message::Assign(a) => Ok(a),
        other => Err(other),
    })?;
    let domain = assignment.domain;
    let task_id = assignment.task_id;

    // The participant still screens locally (the supervisor will anyway),
    // but naive sampling's defining trait is the flat upload.
    let Materialized { leaves, .. } = materialize(task, screener, domain, behaviour, ledger);
    let width = task.output_width();
    let mut data = Vec::with_capacity(leaves.len() * width);
    for leaf in &leaves {
        data.extend_from_slice(leaf);
    }
    endpoint.send(&Message::AllResults {
        task_id,
        leaf_width: width as u32,
        data,
    })?;

    let accepted = recv_matching(endpoint, "Verdict", |msg| match msg {
        Message::Verdict {
            task_id: tid,
            accepted,
        } => Ok((tid, accepted)),
        other => Err(other),
    })
    .and_then(|(tid, accepted)| {
        check_task(task_id, tid)?;
        Ok(accepted)
    })?;
    Ok(accepted)
}

/// Runs the supervisor side: receive the flat upload, spot-check `m`
/// samples by recomputation, screen the (verified) results itself.
///
/// # Errors
///
/// Transport failures, malformed peer messages, or invalid configuration.
pub fn supervisor_naive<T, S>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    domain: Domain,
    config: &NaiveConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    T: ComputeTask,
    S: Screener,
{
    if config.samples == 0 {
        return Err(SchemeError::InvalidConfig {
            reason: "samples must be positive",
        });
    }
    let task_id = config.task_id;
    endpoint.send(&Message::Assign(Assignment { task_id, domain }))?;

    let (width, data) = recv_matching(endpoint, "AllResults", |msg| match msg {
        Message::AllResults {
            task_id: tid,
            leaf_width,
            data,
        } => Ok((tid, leaf_width, data)),
        other => Err(other),
    })
    .and_then(|(tid, width, data)| {
        check_task(task_id, tid)?;
        Ok((width as usize, data))
    })?;
    if width != task.output_width() || data.len() as u64 != domain.len() * width as u64 {
        return Err(SchemeError::MalformedPayload {
            what: "flat results layout",
        });
    }
    let leaf = |i: u64| &data[(i as usize) * width..(i as usize + 1) * width];

    // Spot-check m samples by recomputation.
    let samples = draw_samples(config.seed, config.samples, domain.len());
    let mut verdict = Verdict::Accepted;
    for &i in &samples {
        let x = domain.input(i).expect("sample within domain");
        ledger.charge_verify(1);
        if !task.cheap_verification() {
            ledger.charge_f(task.unit_cost());
        }
        if !task.verify(x, leaf(i)) {
            verdict = Verdict::WrongResult { sample: i };
            break;
        }
    }
    // With every result in hand, the supervisor screens locally.
    let mut reports = Vec::new();
    if verdict.is_accepted() {
        for i in 0..domain.len() {
            let x = domain.input(i).expect("index within domain");
            if let Some(report) = screener.screen(x, leaf(i)) {
                reports.push(report);
            }
        }
    }
    endpoint.send(&Message::Verdict {
        task_id,
        accepted: verdict.is_accepted(),
    })?;
    Ok((verdict, reports))
}

/// Runs a complete naive-sampling round in-process.
///
/// # Errors
///
/// Propagates the supervisor's error if both sides fail.
pub fn run_naive<T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    config: &NaiveConfig,
) -> Result<RoundOutcome, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let (sup_ep, part_ep) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new();

    let (sup_result, part_result, link) = std::thread::scope(|scope| {
        // The participant owns its endpoint so that an early exit (error or
        // completion) drops it and unblocks a supervisor mid-recv.
        let thread_ledger = part_ledger.clone();
        let part_handle = scope
            .spawn(move || participant_naive(&part_ep, task, screener, behaviour, &thread_ledger));
        let sup = supervisor_naive(&sup_ep, task, screener, domain, config, &sup_ledger);
        let link = sup_ep.stats();
        // Unblock a waiting participant if the supervisor bailed early.
        drop(sup_ep);
        let part = part_handle.join().expect("participant thread panicked");
        (sup, part, link)
    });

    let (verdict, reports) = sup_result?;
    let _ = part_result?;
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(m: usize, seed: u64) -> NaiveConfig {
        NaiveConfig {
            task_id: 2,
            samples: m,
            seed,
        }
    }

    #[test]
    fn honest_accepted_with_reports() {
        let task = PasswordSearch::with_hidden_password(3, 40);
        let screener = task.match_screener();
        let outcome = run_naive(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &config(8, 1),
        )
        .unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(outcome.reports[0].input, 40);
    }

    #[test]
    fn cheater_caught_like_cbs() {
        let task = PasswordSearch::with_hidden_password(3, 40);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(7), 5);
        let outcome = run_naive(
            &task,
            &screener,
            Domain::new(0, 128),
            &cheater,
            &config(16, 3),
        )
        .unwrap();
        assert!(!outcome.accepted);
        assert!(matches!(outcome.verdict, Verdict::WrongResult { .. }));
    }

    #[test]
    fn upload_is_linear_in_n() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let mut bytes = Vec::new();
        for bits in [6u32, 8] {
            let outcome = run_naive(
                &task,
                &screener,
                Domain::new(0, 1 << bits),
                &HonestWorker,
                &config(4, 1),
            )
            .unwrap();
            bytes.push(outcome.supervisor_link.bytes_received);
        }
        // 4× the domain → ≈4× the upload (the flat data dominates).
        let growth = bytes[1] as f64 / bytes[0] as f64;
        assert!(
            (3.0..5.0).contains(&growth),
            "naive upload growth {growth:.2}× for 4× domain"
        );
    }

    #[test]
    fn layout_mismatch_is_protocol_error() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let domain = Domain::new(0, 16);
        let (sup_ep, part_ep) = duplex();
        let ledger = CostLedger::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _ = part_ep.recv();
                part_ep
                    .send(&Message::AllResults {
                        task_id: 2,
                        leaf_width: 16,
                        data: vec![0; 5], // wrong length
                    })
                    .unwrap();
            });
            let screener = task.match_screener();
            let err = supervisor_naive(&sup_ep, &task, &screener, domain, &config(4, 1), &ledger)
                .unwrap_err();
            assert_eq!(
                err,
                SchemeError::MalformedPayload {
                    what: "flat results layout"
                }
            );
        });
    }

    #[test]
    fn supervisor_work_is_m_not_n() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let outcome = run_naive(
            &task,
            &screener,
            Domain::new(0, 1 << 10),
            &HonestWorker,
            &config(8, 2),
        )
        .unwrap();
        assert_eq!(outcome.supervisor_costs.f_evals, 8 * task.unit_cost());
        assert_eq!(outcome.supervisor_costs.verify_ops, 8);
    }
}
