//! The non-interactive CBS scheme (Section 4) and its retry attack.
//!
//! NI-CBS removes the commit → challenge round-trip: the participant
//! derives the sample indices from its own commitment via the hash chain of
//! Eq. (4), `i_k = g^k(Φ(R)) mod n`, and ships root, proofs and reports in
//! one message. This suits broker-mediated architectures (GRACE) where the
//! supervisor cannot talk to participants directly.
//!
//! The price is the *retry attack* (Section 4.2): a cheater can re-roll an
//! uncommitted leaf until the derived samples all land in its honest
//! subset, at an expected `1/r^m` attempts. [`retry_attack`] implements
//! the strongest practical version of it — incremental `O(log n)` tree
//! updates and early-exit sample derivation — and the hardened
//! configuration (`g = H^k` with `k` chosen by Eq. (5)) prices it out.

use crate::sampling::{derive_samples, derive_until_outside};
use crate::scheme::cbs::{verify_round, ParticipantTree};
use crate::scheme::{check_task, materialize, Materialized};
use crate::session::{
    drive_participant, drive_supervisor, unexpected, Outbound, ParticipantContext,
    ParticipantSession, SessionOutcome, SupervisorContext, SupervisorSession, VerificationScheme,
};
use crate::{ParticipantStorage, RoundOutcome, SchemeError, Verdict};
use ugc_grid::{
    duplex, Assignment, CostLedger, Endpoint, Message, SampleProof, SemiHonestCheater,
    WorkerBehaviour,
};
use ugc_hash::{HashFunction, IteratedHash};
use ugc_merkle::{LaneWidth, MerkleTree, Parallelism};
use ugc_task::{ComputeTask, Domain, Guesser, ScreenReport, Screener};

/// Non-interactive CBS parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiCbsConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
    /// Number of self-derived samples `m`.
    pub samples: usize,
    /// Iteration count `k` of the sample generator `g = H^k` (Section 4.2
    /// hardening; 1 = plain hash). Choose with
    /// [`analysis::min_g_cost_for_uncheatability`](crate::analysis::min_g_cost_for_uncheatability).
    pub g_iterations: u64,
    /// Screened-report audit size (0 disables).
    pub report_audit: usize,
    /// Seed for the report audit selection.
    pub audit_seed: u64,
}

/// The non-interactive CBS scheme as a [`VerificationScheme`]: one
/// participant → supervisor delivery, samples self-derived from the
/// commitment via Eq. (4).
///
/// Parameters mirror [`NiCbsConfig`] minus the task id (the session
/// context supplies it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiCbsScheme {
    /// Number of self-derived samples `m`.
    pub samples: usize,
    /// Iteration count `k` of the sample generator `g = H^k`.
    pub g_iterations: u64,
    /// Screened-report audit size (0 disables).
    pub report_audit: usize,
    /// Seed for the report audit selection.
    pub audit_seed: u64,
}

impl<H: HashFunction> VerificationScheme<H> for NiCbsScheme {
    fn name(&self) -> &'static str {
        "ni-cbs"
    }

    fn supervisor_session<'a>(
        &'a self,
        ctx: SupervisorContext<'a>,
    ) -> Box<dyn SupervisorSession + 'a> {
        Box::new(NiCbsSupervisorSession::<H> {
            scheme: *self,
            task_id: ctx.task_ids.first().copied().unwrap_or_default(),
            task: ctx.task,
            screener: ctx.screener,
            domain: ctx.domain,
            ledger: ctx.ledger,
            state: SupState::AwaitCommitAndProofs,
            outcome: None,
            _hash: core::marker::PhantomData,
        })
    }

    fn participant_session<'a>(
        &'a self,
        ctx: ParticipantContext<'a>,
    ) -> Box<dyn ParticipantSession + 'a> {
        Box::new(NiCbsParticipantSession::<H> {
            scheme: *self,
            task: ctx.task,
            screener: ctx.screener,
            behaviour: ctx.behaviour,
            storage: ctx.storage,
            parallelism: ctx.parallelism,
            lanes: ctx.lanes,
            ledger: ctx.ledger,
            state: PartState::AwaitAssign,
            _hash: core::marker::PhantomData,
        })
    }
}

enum SupState {
    AwaitCommitAndProofs,
    AwaitReports {
        root_bytes: Vec<u8>,
        proofs: Vec<SampleProof>,
    },
    Done,
}

struct NiCbsSupervisorSession<'a, H: HashFunction> {
    scheme: NiCbsScheme,
    task_id: u64,
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    domain: Domain,
    ledger: CostLedger,
    state: SupState,
    outcome: Option<SessionOutcome>,
    _hash: core::marker::PhantomData<H>,
}

impl<H: HashFunction> SupervisorSession for NiCbsSupervisorSession<'_, H> {
    fn start(&mut self) -> Result<Vec<Outbound>, SchemeError> {
        if self.scheme.samples == 0 {
            return Err(SchemeError::InvalidConfig {
                reason: "samples must be positive",
            });
        }
        Ok(vec![(
            0,
            Message::Assign(Assignment {
                task_id: self.task_id,
                domain: self.domain,
            }),
        )])
    }

    fn on_message(&mut self, _slot: usize, msg: Message) -> Result<Vec<Outbound>, SchemeError> {
        match std::mem::replace(&mut self.state, SupState::Done) {
            SupState::AwaitCommitAndProofs => {
                let Message::CommitAndProofs {
                    task_id,
                    root,
                    proofs,
                } = msg
                else {
                    return unexpected("CommitAndProofs", &msg);
                };
                check_task(self.task_id, task_id)?;
                self.state = SupState::AwaitReports {
                    root_bytes: root,
                    proofs,
                };
                Ok(Vec::new())
            }
            SupState::AwaitReports { root_bytes, proofs } => {
                let Message::Reports { task_id, reports } = msg else {
                    return unexpected("Reports", &msg);
                };
                check_task(self.task_id, task_id)?;
                let root =
                    H::digest_from_bytes(&root_bytes).ok_or(SchemeError::MalformedPayload {
                        what: "commitment root",
                    })?;
                // Re-derive the samples the participant *must* have used
                // (Eq. 4); the supervisor pays the same m·k unit hashes.
                let g = IteratedHash::<H>::new(self.scheme.g_iterations);
                let samples = derive_samples(
                    &g,
                    root.as_ref(),
                    self.scheme.samples,
                    self.domain.len(),
                    &self.ledger,
                );
                let derivation_ok = proofs.len() == samples.len()
                    && samples.iter().zip(&proofs).all(|(s, p)| *s == p.index);
                let verdict = if derivation_ok {
                    verify_round::<H>(
                        self.task,
                        self.screener,
                        self.domain,
                        &root,
                        &samples,
                        &proofs,
                        &reports,
                        self.scheme.report_audit,
                        self.scheme.audit_seed,
                        &self.ledger,
                    )?
                } else {
                    Verdict::SampleDerivationMismatch
                };
                let verdict_msg = Message::Verdict {
                    task_id: self.task_id,
                    accepted: verdict.is_accepted(),
                };
                self.outcome = Some(SessionOutcome {
                    verdict,
                    reports: reports
                        .into_iter()
                        .map(|(input, payload)| ScreenReport { input, payload })
                        .collect(),
                });
                Ok(vec![(0, verdict_msg)])
            }
            SupState::Done => unexpected("nothing (session finished)", &msg),
        }
    }

    fn take_outcome(&mut self) -> Option<SessionOutcome> {
        self.outcome.take()
    }
}

enum PartState {
    AwaitAssign,
    AwaitVerdict { task_id: u64 },
    Done(bool),
}

struct NiCbsParticipantSession<'a, H: HashFunction> {
    scheme: NiCbsScheme,
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    behaviour: &'a dyn WorkerBehaviour,
    storage: ParticipantStorage,
    parallelism: Parallelism,
    lanes: LaneWidth,
    ledger: CostLedger,
    state: PartState,
    _hash: core::marker::PhantomData<H>,
}

impl<H: HashFunction> ParticipantSession for NiCbsParticipantSession<'_, H> {
    fn on_message(&mut self, msg: Message) -> Result<Vec<Message>, SchemeError> {
        match std::mem::replace(&mut self.state, PartState::AwaitAssign) {
            // Everything happens at assignment time: evaluate, commit,
            // self-derive the samples, prove — one shot on the wire.
            PartState::AwaitAssign => {
                let Message::Assign(assignment) = msg else {
                    return unexpected("Assign", &msg);
                };
                let domain = assignment.domain;
                let task_id = assignment.task_id;
                let Materialized { leaves, reports } = materialize(
                    self.task,
                    self.screener,
                    domain,
                    self.behaviour,
                    &self.ledger,
                );
                let tree = ParticipantTree::<H>::build(
                    &leaves,
                    self.storage,
                    self.parallelism,
                    self.lanes,
                    &self.ledger,
                )?;
                if matches!(self.storage, ParticipantStorage::Partial { .. }) {
                    drop(leaves);
                }
                let root = tree.root();
                // Eq. (4): the samples come from the commitment itself.
                let g = IteratedHash::<H>::new(self.scheme.g_iterations);
                let samples = derive_samples(
                    &g,
                    root.as_ref(),
                    self.scheme.samples,
                    domain.len(),
                    &self.ledger,
                );
                let mut proofs = Vec::with_capacity(samples.len());
                for &index in &samples {
                    proofs.push(tree.prove(
                        index,
                        self.task,
                        domain,
                        self.behaviour,
                        &self.ledger,
                    )?);
                }
                let out = vec![
                    Message::CommitAndProofs {
                        task_id,
                        root: root.as_ref().to_vec(),
                        proofs,
                    },
                    Message::Reports {
                        task_id,
                        reports: reports.into_iter().map(|r| (r.input, r.payload)).collect(),
                    },
                ];
                self.state = PartState::AwaitVerdict { task_id };
                Ok(out)
            }
            PartState::AwaitVerdict { task_id } => {
                let Message::Verdict {
                    task_id: tid,
                    accepted,
                } = msg
                else {
                    return unexpected("Verdict", &msg);
                };
                check_task(task_id, tid)?;
                self.state = PartState::Done(accepted);
                Ok(Vec::new())
            }
            done @ PartState::Done(_) => {
                self.state = done;
                unexpected("nothing (session finished)", &msg)
            }
        }
    }

    fn finished(&self) -> Option<bool> {
        match self.state {
            PartState::Done(accepted) => Some(accepted),
            _ => None,
        }
    }
}

/// Runs the participant side of NI-CBS with the default tree-build
/// parallelism (one thread per available core); see
/// [`participant_ni_cbs_with`].
///
/// # Errors
///
/// Transport failures, malformed peer messages, or Merkle errors.
pub fn participant_ni_cbs<H, T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    storage: ParticipantStorage,
    config: &NiCbsConfig,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    participant_ni_cbs_with::<H, T, S, B>(
        endpoint,
        task,
        screener,
        behaviour,
        storage,
        Parallelism::default(),
        LaneWidth::default(),
        config,
        ledger,
    )
}

/// Runs the participant side of NI-CBS: evaluate, commit, self-derive
/// samples, prove, ship everything in one shot. A thin wrapper that
/// drives the scheme's [`ParticipantSession`] over blocking receives; the
/// commitment tree builds with up to `parallelism` threads (bit-identical
/// to serial).
///
/// # Errors
///
/// Transport failures, malformed peer messages, or Merkle errors.
#[allow(clippy::too_many_arguments)]
pub fn participant_ni_cbs_with<H, T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    storage: ParticipantStorage,
    parallelism: Parallelism,
    lanes: LaneWidth,
    config: &NiCbsConfig,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let scheme = NiCbsScheme {
        samples: config.samples,
        g_iterations: config.g_iterations,
        report_audit: config.report_audit,
        audit_seed: config.audit_seed,
    };
    let mut session = VerificationScheme::<H>::participant_session(
        &scheme,
        ParticipantContext {
            task,
            screener,
            behaviour,
            storage,
            parallelism,
            lanes,
            ledger: ledger.clone(),
        },
    );
    drive_participant(endpoint, session.as_mut())
}

/// Runs the supervisor side of NI-CBS: assign, receive the single-shot
/// commitment, re-derive the samples from the root, verify. A thin
/// wrapper that drives the scheme's [`SupervisorSession`] over blocking
/// receives.
///
/// # Errors
///
/// Transport failures, malformed peer messages, or invalid configuration.
pub fn supervisor_ni_cbs<H, T, S>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    domain: Domain,
    config: &NiCbsConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    let scheme = NiCbsScheme {
        samples: config.samples,
        g_iterations: config.g_iterations,
        report_audit: config.report_audit,
        audit_seed: config.audit_seed,
    };
    let mut session = VerificationScheme::<H>::supervisor_session(
        &scheme,
        SupervisorContext {
            task,
            screener,
            domain,
            task_ids: vec![config.task_id],
            ledger: ledger.clone(),
        },
    );
    let outcome = drive_supervisor(&[endpoint], session.as_mut())?;
    Ok((outcome.verdict, outcome.reports))
}

/// Runs a complete NI-CBS round in-process with the default tree-build
/// parallelism (one thread per available core); see [`run_ni_cbs_with`].
///
/// # Errors
///
/// As [`run_ni_cbs_with`].
pub fn run_ni_cbs<H, T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    storage: ParticipantStorage,
    config: &NiCbsConfig,
) -> Result<RoundOutcome, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    run_ni_cbs_with::<H, T, S, B>(
        task,
        screener,
        domain,
        behaviour,
        storage,
        Parallelism::default(),
        LaneWidth::default(),
        config,
    )
}

/// Runs a complete NI-CBS round in-process (supervisor + scoped-thread
/// participant over a duplex link); the participant's commitment tree
/// builds with up to `parallelism` threads and the digest lane width
/// `lanes`.
///
/// # Errors
///
/// Propagates the supervisor's error if both sides fail.
#[allow(clippy::too_many_arguments)]
pub fn run_ni_cbs_with<H, T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    storage: ParticipantStorage,
    parallelism: Parallelism,
    lanes: LaneWidth,
    config: &NiCbsConfig,
) -> Result<RoundOutcome, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let (sup_ep, part_ep) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new();

    let (sup_result, part_result, link) = std::thread::scope(|scope| {
        // The participant owns its endpoint so that an early exit (error or
        // completion) drops it and unblocks a supervisor mid-recv.
        let thread_ledger = part_ledger.clone();
        let part_handle = scope.spawn(move || {
            participant_ni_cbs_with::<H, T, S, B>(
                &part_ep,
                task,
                screener,
                behaviour,
                storage,
                parallelism,
                lanes,
                config,
                &thread_ledger,
            )
        });
        let sup =
            supervisor_ni_cbs::<H, T, S>(&sup_ep, task, screener, domain, config, &sup_ledger);
        let link = sup_ep.stats();
        // Unblock a waiting participant if the supervisor bailed early.
        drop(sup_ep);
        let part = part_handle.join().expect("participant thread panicked");
        (sup, part, link)
    });

    let (verdict, reports) = sup_result?;
    let _ = part_result?;
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

/// Configuration of the Section 4.2 retry attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAttackConfig {
    /// Number of self-derived samples `m` the scheme uses.
    pub samples: usize,
    /// Iteration count `k` of `g = H^k`.
    pub g_iterations: u64,
    /// Give up after this many attempts (bounds experiment run-time).
    pub max_attempts: u64,
}

/// What the retry attacker measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAttackOutcome {
    /// Whether an attempt succeeded within the budget.
    pub succeeded: bool,
    /// Attempts consumed (1 = the initial tree already worked).
    pub attempts: u64,
    /// Unit hashes spent deriving samples (the `m·C_g` term of Eq. (5),
    /// reduced by early exit).
    pub g_unit_hashes: u64,
    /// Unit hashes spent on incremental per-attempt tree updates
    /// (`O(log n)` each) — the attack's *marginal* tree cost.
    pub tree_hashes: u64,
    /// Unit hashes spent building the initial tree — paid once, and also
    /// paid by an honest participant committing the same domain.
    pub commit_hashes: u64,
    /// `f` evaluations spent on the honest subset (paid once, up front).
    pub honest_f_evals: u64,
}

impl RetryAttackOutcome {
    /// The attack's marginal unit-hash bill (excludes the commitment
    /// build an honest participant would also pay): the quantity Eq. (5)
    /// weighs against `n·C_f`.
    #[must_use]
    pub fn marginal_cost(&self) -> u64 {
        self.g_unit_hashes + self.tree_hashes
    }
}

/// Executes the strongest practical retry attack against NI-CBS
/// (Section 4.2):
///
/// 1. commit with honest values on `D′` and guesses elsewhere;
/// 2. derive the samples from the root, *stopping at the first sample that
///    escapes `D′`* (early exit — cheaper than the paper's `m·C_g`
///    accounting);
/// 3. on failure, re-roll **one** guessed leaf and update the tree
///    incrementally in `O(log n)` hashes, then retry.
///
/// Returns the measured costs; compare with
/// [`analysis::ni_expected_attempts`](crate::analysis::ni_expected_attempts)
/// and [`analysis::ni_attack_cost`](crate::analysis::ni_attack_cost).
///
/// # Errors
///
/// Merkle errors (zero-width outputs etc.) and
/// [`SchemeError::InvalidConfig`] for `samples == 0` or a fully dishonest
/// cheater with an empty honest set (the attack cannot succeed).
pub fn retry_attack<H, T, G>(
    task: &T,
    domain: Domain,
    cheater: &SemiHonestCheater<G>,
    config: &RetryAttackConfig,
) -> Result<RetryAttackOutcome, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    G: Guesser,
{
    if config.samples == 0 {
        return Err(SchemeError::InvalidConfig {
            reason: "samples must be positive",
        });
    }
    let n = domain.len();
    let honest: Vec<bool> = (0..n).map(|i| cheater.is_honest_index(n, i)).collect();
    let Some(pivot) = honest.iter().position(|&h| !h).map(|i| i as u64) else {
        // Fully honest "cheater": every derivation trivially succeeds.
        return Ok(RetryAttackOutcome {
            succeeded: true,
            attempts: 1,
            g_unit_hashes: config.samples as u64 * config.g_iterations,
            tree_hashes: 0,
            commit_hashes: 0,
            honest_f_evals: 0,
        });
    };
    let ledger = CostLedger::new();
    let mut tree: MerkleTree<H> = MerkleTree::from_leaf_fn(n, task.output_width(), |i| {
        cheater.leaf_value_salted(task, domain, i, 0, &ledger)
    })?;
    let commit_hashes = tree.hash_ops();
    ledger.charge_hash(commit_hashes);
    let honest_f_evals = ledger.report().f_evals;
    let g = IteratedHash::<H>::new(config.g_iterations);

    let mut attempts = 0u64;
    let mut succeeded = false;
    let mut update_hashes = 0u64;
    while attempts < config.max_attempts {
        attempts += 1;
        let root = tree.root();
        let (all_inside, _) =
            derive_until_outside(&g, root.as_ref(), config.samples, n, &ledger, |i| {
                honest[i as usize]
            });
        if all_inside {
            succeeded = true;
            break;
        }
        // Re-roll one guessed leaf; the salt doubles as the attempt nonce.
        let x_pivot_value = cheater.leaf_value_salted(task, domain, pivot, attempts, &ledger);
        let ops = tree.update_leaf(pivot, &x_pivot_value)?;
        update_hashes += ops;
        ledger.charge_hash(ops);
    }
    let report = ledger.report();
    Ok(RetryAttackOutcome {
        succeeded,
        attempts,
        g_unit_hashes: report.g_evals,
        tree_hashes: update_hashes,
        commit_hashes,
        honest_f_evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use ugc_grid::{CheatSelection, HonestWorker};
    use ugc_hash::{Md5, Sha256};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(m: usize) -> NiCbsConfig {
        NiCbsConfig {
            task_id: 3,
            samples: m,
            g_iterations: 1,
            report_audit: 0,
            audit_seed: 0,
        }
    }

    #[test]
    fn honest_participant_accepted() {
        let task = PasswordSearch::with_hidden_password(5, 9);
        let screener = task.match_screener();
        let outcome = run_ni_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 128),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(10),
        )
        .unwrap();
        assert!(outcome.accepted);
        // Both sides paid the g-derivation cost.
        assert_eq!(outcome.supervisor_costs.g_evals, 10);
        assert_eq!(outcome.participant_costs.g_evals, 10);
    }

    #[test]
    fn single_shot_cheater_usually_caught() {
        // Without retries, NI-CBS detects like CBS: r=0.5, m=12 survives
        // with probability 2^-12.
        let task = PasswordSearch::with_hidden_password(5, 9);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.5, CheatSelection::Scattered, ZeroGuesser::new(1), 2);
        let outcome = run_ni_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 256),
            &cheater,
            ParticipantStorage::Full,
            &config(12),
        )
        .unwrap();
        assert!(!outcome.accepted);
    }

    #[test]
    fn hardened_g_costs_scale() {
        let task = PasswordSearch::with_hidden_password(5, 9);
        let screener = task.match_screener();
        let mut cfg = config(8);
        cfg.g_iterations = 50;
        let outcome = run_ni_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            ParticipantStorage::Full,
            &cfg,
        )
        .unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.supervisor_costs.g_evals, 8 * 50);
        assert_eq!(outcome.participant_costs.g_evals, 8 * 50);
    }

    #[test]
    fn partial_storage_works_non_interactively() {
        let task = PasswordSearch::with_hidden_password(5, 9);
        let screener = task.match_screener();
        let outcome = run_ni_cbs::<Md5, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 128),
            &HonestWorker,
            ParticipantStorage::Partial { subtree_height: 3 },
            &config(6),
        )
        .unwrap();
        assert!(outcome.accepted);
    }

    #[test]
    fn single_round_trip_on_the_wire() {
        // NI-CBS needs exactly: Assign out; CommitAndProofs + Reports in;
        // Verdict out. No Challenge.
        let task = PasswordSearch::with_hidden_password(5, 9);
        let screener = task.match_screener();
        let outcome = run_ni_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            ParticipantStorage::Full,
            &config(5),
        )
        .unwrap();
        assert_eq!(outcome.supervisor_link.messages_sent, 2); // Assign, Verdict
        assert_eq!(outcome.supervisor_link.messages_received, 2); // CommitAndProofs, Reports
    }

    #[test]
    fn forged_sample_choice_detected() {
        // A participant that ignores Eq. (4) and proves samples of its own
        // choosing is rejected even with valid proofs.
        let task = PasswordSearch::with_hidden_password(5, 9);
        let domain = Domain::new(0, 64);
        let (sup_ep, part_ep) = duplex();
        let ledger = CostLedger::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let screener = task.match_screener();
                let cfg = config(4);
                supervisor_ni_cbs::<Sha256, _, _>(&sup_ep, &task, &screener, domain, &cfg, &ledger)
            });
            // Forging participant: commits honestly but proves samples 0..4.
            let Message::Assign(a) = part_ep.recv().unwrap() else {
                panic!("expected assignment");
            };
            let leaves: Vec<Vec<u8>> = (0..64).map(|x| task.compute(x)).collect();
            let tree: MerkleTree<Sha256> = MerkleTree::build(&leaves).unwrap();
            let proofs: Vec<_> = (0..4u64)
                .map(|i| {
                    let p = tree.prove(i).unwrap();
                    crate::scheme::proof_to_wire(&p, leaves[i as usize].clone())
                })
                .collect();
            part_ep
                .send(&Message::CommitAndProofs {
                    task_id: a.task_id,
                    root: tree.root().to_vec(),
                    proofs,
                })
                .unwrap();
            part_ep
                .send(&Message::Reports {
                    task_id: a.task_id,
                    reports: vec![],
                })
                .unwrap();
            let Message::Verdict { accepted, .. } = part_ep.recv().unwrap() else {
                panic!("expected verdict");
            };
            assert!(!accepted, "forged sample choice must be rejected");
        });
    }

    #[test]
    fn retry_attack_succeeds_with_small_m() {
        // r = 0.5, m = 4: expected 16 attempts; 10_000 is overwhelming.
        let task = PasswordSearch::with_hidden_password(1, 2);
        let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(3), 4);
        let outcome = retry_attack::<Sha256, _, _>(
            &task,
            Domain::new(0, 64),
            &cheater,
            &RetryAttackConfig {
                samples: 4,
                g_iterations: 1,
                max_attempts: 10_000,
            },
        )
        .unwrap();
        assert!(outcome.succeeded);
        assert!(outcome.attempts >= 1);
        // The honest half was computed exactly once.
        assert_eq!(outcome.honest_f_evals, 32 * task.unit_cost());
    }

    #[test]
    fn retry_attack_forged_commitment_passes_supervisor() {
        // The attack's whole point: after retrying, the forged commitment
        // passes NI-CBS verification. Reproduce it end to end.
        let task = PasswordSearch::with_hidden_password(1, 2);
        let domain = Domain::new(0, 64);
        let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(3), 4);
        let attack_cfg = RetryAttackConfig {
            samples: 3,
            g_iterations: 1,
            max_attempts: 10_000,
        };
        let attack = retry_attack::<Sha256, _, _>(&task, domain, &cheater, &attack_cfg).unwrap();
        assert!(attack.succeeded);
        // Re-build the winning tree and run the supervisor against it.
        let ledger = CostLedger::new();
        let winning_salt = attack.attempts; // salts 1..attempts applied; last one stuck
        let mut tree: MerkleTree<Sha256> = MerkleTree::from_leaf_fn(64, 16, |i| {
            cheater.leaf_value_salted(&task, domain, i, 0, &ledger)
        })
        .unwrap();
        let pivot = (0..64u64)
            .find(|&i| !cheater.is_honest_index(64, i))
            .unwrap();
        if winning_salt > 1 {
            // Replay the pivot re-rolls: the final state used the last salt
            // applied before success. Attempt k fails → salt k applied; the
            // derivation that succeeded saw salts up to attempts-1.
            let v = cheater.leaf_value_salted(&task, domain, pivot, winning_salt - 1, &ledger);
            tree.update_leaf(pivot, &v).unwrap();
        }
        let g = IteratedHash::<Sha256>::new(1);
        let samples = derive_samples(&g, tree.root().as_ref(), 3, 64, &ledger);
        assert!(
            samples.iter().all(|&s| cheater.is_honest_index(64, s)),
            "replayed tree must re-derive in-D′ samples"
        );
    }

    #[test]
    fn retry_attack_attempt_count_near_theory() {
        // Average over independent cheaters: E[attempts] = r^-m = 8.
        let task = PasswordSearch::with_hidden_password(1, 2);
        let mut total = 0u64;
        let runs = 60;
        for seed in 0..runs {
            let cheater =
                SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(seed), seed);
            let outcome = retry_attack::<Md5, _, _>(
                &task,
                Domain::new(0, 32),
                &cheater,
                &RetryAttackConfig {
                    samples: 3,
                    g_iterations: 1,
                    max_attempts: 100_000,
                },
            )
            .unwrap();
            assert!(outcome.succeeded);
            total += outcome.attempts;
        }
        let mean = total as f64 / runs as f64;
        let theory = analysis::ni_expected_attempts(0.5, 3);
        // Geometric distribution: sd = sqrt(1-p)/p ≈ 7.5; 60 runs → se ≈ 1.
        assert!(
            (mean - theory).abs() < 4.0,
            "mean {mean:.1} vs theory {theory}"
        );
    }

    #[test]
    fn retry_attack_respects_budget() {
        // r = 0.2, m = 10: expected ~10^7 attempts; budget 50 must fail.
        let task = PasswordSearch::with_hidden_password(1, 2);
        let cheater = SemiHonestCheater::new(0.2, CheatSelection::Prefix, ZeroGuesser::new(3), 4);
        let outcome = retry_attack::<Md5, _, _>(
            &task,
            Domain::new(0, 64),
            &cheater,
            &RetryAttackConfig {
                samples: 10,
                g_iterations: 1,
                max_attempts: 50,
            },
        )
        .unwrap();
        assert!(!outcome.succeeded);
        assert_eq!(outcome.attempts, 50);
    }

    #[test]
    fn retry_attack_fully_honest_trivial() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let cheater = SemiHonestCheater::new(1.0, CheatSelection::Prefix, ZeroGuesser::new(3), 4);
        let outcome = retry_attack::<Sha256, _, _>(
            &task,
            Domain::new(0, 16),
            &cheater,
            &RetryAttackConfig {
                samples: 5,
                g_iterations: 1,
                max_attempts: 10,
            },
        )
        .unwrap();
        assert!(outcome.succeeded);
        assert_eq!(outcome.attempts, 1);
    }

    #[test]
    fn hardened_g_multiplies_attack_cost() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let run = |k: u64| {
            let cheater =
                SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(9), 9);
            retry_attack::<Md5, _, _>(
                &task,
                Domain::new(0, 32),
                &cheater,
                &RetryAttackConfig {
                    samples: 3,
                    g_iterations: k,
                    max_attempts: 100_000,
                },
            )
            .unwrap()
        };
        let plain = run(1);
        let hardened = run(100);
        assert!(plain.succeeded && hardened.succeeded);
        // The two runs derive different chains (g differs), so attempt
        // counts are not comparable — but every hardened chain element
        // costs exactly 100 unit hashes, and at least one element is
        // consumed per attempt.
        assert_eq!(hardened.g_unit_hashes % 100, 0);
        assert!(hardened.g_unit_hashes >= 100 * hardened.attempts);
        assert!(plain.g_unit_hashes >= plain.attempts);
    }
}
