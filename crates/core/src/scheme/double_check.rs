//! The straw-man scheme of Section 1: assign every task twice and compare.
//!
//! Detection is certain whenever at least one replica is honest and the
//! cheating replicas disagree with it — but *half of all grid cycles are
//! wasted on redundancy*, and the supervisor still absorbs two `O(n)`
//! uploads. This is the baseline that motivates everything else.

use crate::scheme::check_task;
use crate::scheme::naive::FlatUploadParticipantSession;
use crate::session::{
    drive_participant, drive_supervisor, unexpected, Outbound, ParticipantContext,
    ParticipantSession, SessionOutcome, SupervisorContext, SupervisorSession, VerificationScheme,
};
use crate::{RoundOutcome, SchemeError, Verdict};
use ugc_grid::{duplex, Assignment, CostLedger, Endpoint, Message, WorkerBehaviour};
use ugc_hash::HashFunction;
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Double-check parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleCheckConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
}

/// The double-check scheme as a [`VerificationScheme`]. The only
/// two-slot scheme: one supervisor session spans *two* participant
/// replicas, so its session demonstrates the engine's multi-peer routing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoubleCheckScheme;

impl<H: HashFunction> VerificationScheme<H> for DoubleCheckScheme {
    fn name(&self) -> &'static str {
        "double-check"
    }

    fn participant_slots(&self) -> usize {
        2
    }

    fn supervisor_session<'a>(
        &'a self,
        ctx: SupervisorContext<'a>,
    ) -> Box<dyn SupervisorSession + 'a> {
        let mut task_ids = [0u64; 2];
        for (slot, id) in task_ids.iter_mut().zip(&ctx.task_ids) {
            *slot = *id;
        }
        Box::new(DoubleCheckSupervisorSession {
            task_ids,
            task: ctx.task,
            screener: ctx.screener,
            domain: ctx.domain,
            ledger: ctx.ledger,
            uploads: [None, None],
            done: false,
            outcome: None,
        })
    }

    fn participant_session<'a>(
        &'a self,
        ctx: ParticipantContext<'a>,
    ) -> Box<dyn ParticipantSession + 'a> {
        // A replica is wire-identical to a naive-sampling participant:
        // evaluate, flat-upload, await the verdict.
        Box::new(FlatUploadParticipantSession::new(ctx))
    }
}

struct DoubleCheckSupervisorSession<'a> {
    task_ids: [u64; 2],
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    domain: Domain,
    ledger: CostLedger,
    uploads: [Option<Vec<u8>>; 2],
    done: bool,
    outcome: Option<SessionOutcome>,
}

impl SupervisorSession for DoubleCheckSupervisorSession<'_> {
    fn start(&mut self) -> Result<Vec<Outbound>, SchemeError> {
        Ok((0..2)
            .map(|slot| {
                (
                    slot,
                    Message::Assign(Assignment {
                        task_id: self.task_ids[slot],
                        domain: self.domain,
                    }),
                )
            })
            .collect())
    }

    fn on_message(&mut self, slot: usize, msg: Message) -> Result<Vec<Outbound>, SchemeError> {
        if self.done || slot > 1 {
            return unexpected("nothing (replicas already answered)", &msg);
        }
        let Message::AllResults {
            task_id,
            leaf_width,
            data,
        } = msg
        else {
            return unexpected("AllResults", &msg);
        };
        check_task(self.task_ids[slot], task_id)?;
        let width = self.task.output_width();
        if leaf_width as usize != width || data.len() as u64 != self.domain.len() * width as u64 {
            return Err(SchemeError::MalformedPayload {
                what: "flat results layout",
            });
        }
        if let Some(existing) = &self.uploads[slot] {
            // At-least-once transports redeliver: an identical copy of a
            // replica's upload is idempotently ignored. This session
            // spans two links, so whether the duplicate lands before or
            // after the twin's upload is a cross-link race — tolerating
            // the redelivery is what keeps the verdict deterministic. A
            // *different* re-upload is still a protocol violation.
            return if *existing == data {
                Ok(Vec::new())
            } else {
                Err(SchemeError::MalformedPayload {
                    what: "replica re-upload diverged from its first upload",
                })
            };
        }
        self.uploads[slot] = Some(data);
        let [Some(data_a), Some(data_b)] = &self.uploads else {
            return Ok(Vec::new()); // first replica in; wait for its twin
        };

        // Both uploads in hand: compare byte-for-byte, screen agreement.
        let verdict = match (0..self.domain.len()).find(|&i| {
            let lo = (i as usize) * width;
            data_a[lo..lo + width] != data_b[lo..lo + width]
        }) {
            Some(index) => Verdict::ReplicaDisagreement { index },
            None => Verdict::Accepted,
        };
        let mut reports = Vec::new();
        if verdict.is_accepted() {
            for i in 0..self.domain.len() {
                let x = self.domain.input(i).expect("index within domain");
                let lo = (i as usize) * width;
                if let Some(report) = self.screener.screen(x, &data_a[lo..lo + width]) {
                    reports.push(report);
                }
            }
        }
        let out = (0..2)
            .map(|s| {
                (
                    s,
                    Message::Verdict {
                        task_id: self.task_ids[s],
                        accepted: verdict.is_accepted(),
                    },
                )
            })
            .collect();
        // The comparison itself is linear but cheap; we charge one verify
        // op per compared record for the cost tables.
        self.ledger.charge_verify(self.domain.len());
        self.done = true;
        self.outcome = Some(SessionOutcome { verdict, reports });
        Ok(out)
    }

    fn is_stale(&self, slot: usize, msg: &Message) -> bool {
        // An identical redelivery of a replica's upload (fault-injected
        // duplication) carries no information: report it stale so the
        // drivers drop it uncharged wherever it lands relative to the
        // twin's upload — this session spans two links, so that order is
        // a race.
        if self.done {
            return true;
        }
        let Message::AllResults { task_id, data, .. } = msg else {
            return false;
        };
        slot <= 1 && *task_id == self.task_ids[slot] && self.uploads[slot].as_ref() == Some(data)
    }

    fn on_peer_gone(&mut self, slot: usize) -> Result<(), SchemeError> {
        // A replica that already uploaded has done everything this
        // session needs from it; its death must not fail the comparison
        // (whether the death notice beats the twin's upload across links
        // is a race). A replica that dies *before* uploading makes the
        // comparison impossible.
        if self.done || (slot <= 1 && self.uploads[slot].is_some()) {
            Ok(())
        } else {
            Err(SchemeError::Grid(ugc_grid::GridError::Disconnected))
        }
    }

    fn take_outcome(&mut self) -> Option<SessionOutcome> {
        self.outcome.take()
    }
}

/// Runs the replica (participant) side: evaluate and upload everything. A
/// thin wrapper driving the shared flat-upload [`ParticipantSession`].
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn participant_double_check<T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let mut session = FlatUploadParticipantSession::new(ParticipantContext {
        task,
        screener,
        behaviour,
        storage: crate::ParticipantStorage::Full,
        parallelism: ugc_merkle::Parallelism::serial(),
        lanes: ugc_merkle::LaneWidth::default(),
        ledger: ledger.clone(),
    });
    drive_participant(endpoint, &mut session)
}

/// Runs the supervisor against two replicas: assign the same domain to
/// both, compare their uploads byte-for-byte, screen the agreed results.
/// A thin wrapper driving the scheme's two-slot [`SupervisorSession`]
/// over the pair of endpoints.
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn supervisor_double_check<T, S>(
    endpoint_a: &Endpoint,
    endpoint_b: &Endpoint,
    task: &T,
    screener: &S,
    domain: Domain,
    config: &DoubleCheckConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    T: ComputeTask,
    S: Screener,
{
    let scheme = DoubleCheckScheme;
    let mut session = VerificationScheme::<ugc_hash::Sha256>::supervisor_session(
        &scheme,
        SupervisorContext {
            task,
            screener,
            domain,
            task_ids: vec![config.task_id; 2],
            ledger: ledger.clone(),
        },
    );
    let outcome = drive_supervisor(&[endpoint_a, endpoint_b], session.as_mut())?;
    Ok((outcome.verdict, outcome.reports))
}

/// Runs a complete double-check round: two replicas on scoped threads.
///
/// The returned outcome's `participant_costs` is the **sum over both
/// replicas** — the paper's point is precisely that this doubles the spent
/// cycles.
///
/// # Errors
///
/// Propagates the supervisor's error if multiple sides fail.
pub fn run_double_check<T, S, BA, BB>(
    task: &T,
    screener: &S,
    domain: Domain,
    replica_a: &BA,
    replica_b: &BB,
    config: &DoubleCheckConfig,
) -> Result<RoundOutcome, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    BA: WorkerBehaviour,
    BB: WorkerBehaviour,
{
    let (sup_a, part_a) = duplex();
    let (sup_b, part_b) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new(); // shared: we want the total burn

    let (sup_result, a_result, b_result, link) = std::thread::scope(|scope| {
        // Each replica owns its endpoint so an early exit unblocks the
        // supervisor mid-recv.
        let ledger_a = part_ledger.clone();
        let ledger_b = part_ledger.clone();
        let handle_a = scope
            .spawn(move || participant_double_check(&part_a, task, screener, replica_a, &ledger_a));
        let handle_b = scope
            .spawn(move || participant_double_check(&part_b, task, screener, replica_b, &ledger_b));
        let sup =
            supervisor_double_check(&sup_a, &sup_b, task, screener, domain, config, &sup_ledger);
        let mut link = sup_a.stats();
        let b_stats = sup_b.stats();
        link.bytes_sent += b_stats.bytes_sent;
        link.bytes_received += b_stats.bytes_received;
        link.messages_sent += b_stats.messages_sent;
        link.messages_received += b_stats.messages_received;
        // Unblock waiting replicas if the supervisor bailed early.
        drop(sup_a);
        drop(sup_b);
        (
            sup,
            handle_a.join().expect("replica A panicked"),
            handle_b.join().expect("replica B panicked"),
            link,
        )
    });

    let (verdict, reports) = sup_result?;
    let _ = a_result?;
    let _ = b_result?;
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    const CONFIG: DoubleCheckConfig = DoubleCheckConfig { task_id: 4 };

    #[test]
    fn two_honest_replicas_agree() {
        let task = PasswordSearch::with_hidden_password(1, 20);
        let screener = task.match_screener();
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &HonestWorker,
            &CONFIG,
        )
        .unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.reports.len(), 1);
        // Both replicas burned the full task: 2n evaluations.
        assert_eq!(outcome.participant_costs.f_evals, 128);
    }

    #[test]
    fn cheating_replica_detected_with_certainty() {
        let task = PasswordSearch::with_hidden_password(1, 20);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.9, CheatSelection::Scattered, ZeroGuesser::new(2), 3);
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &cheater,
            &CONFIG,
        )
        .unwrap();
        assert!(!outcome.accepted);
        assert!(matches!(
            outcome.verdict,
            Verdict::ReplicaDisagreement { .. }
        ));
    }

    #[test]
    fn colluding_identical_cheaters_evade() {
        // The known blind spot: identical deterministic cheaters agree.
        let task = PasswordSearch::with_hidden_password(1, 20);
        let screener = task.match_screener();
        let cheater_a = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(7), 1);
        let cheater_b = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(7), 1);
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &cheater_a,
            &cheater_b,
            &CONFIG,
        )
        .unwrap();
        assert!(
            outcome.accepted,
            "colluding replicas slip through double-check"
        );
    }

    #[test]
    fn traffic_is_double_the_naive_upload() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 256),
            &HonestWorker,
            &HonestWorker,
            &CONFIG,
        )
        .unwrap();
        // Two uploads of n × 16 bytes dominate the inbound traffic.
        assert!(outcome.supervisor_link.bytes_received as f64 > 2.0 * 256.0 * 16.0);
    }

    #[test]
    fn disagreement_reports_first_divergent_index() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        // Cheater honest on prefix 32 of 64: first divergence at 32.
        let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(5), 9);
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &cheater,
            &CONFIG,
        )
        .unwrap();
        assert_eq!(outcome.verdict, Verdict::ReplicaDisagreement { index: 32 });
    }
}
