//! The straw-man scheme of Section 1: assign every task twice and compare.
//!
//! Detection is certain whenever at least one replica is honest and the
//! cheating replicas disagree with it — but *half of all grid cycles are
//! wasted on redundancy*, and the supervisor still absorbs two `O(n)`
//! uploads. This is the baseline that motivates everything else.

use crate::scheme::{check_task, materialize, recv_matching, Materialized};
use crate::{RoundOutcome, SchemeError, Verdict};
use ugc_grid::{duplex, Assignment, CostLedger, Endpoint, Message, WorkerBehaviour};
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Double-check parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleCheckConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
}

/// Runs the replica (participant) side: evaluate and upload everything.
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn participant_double_check<T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let assignment = recv_matching(endpoint, "Assign", |msg| match msg {
        Message::Assign(a) => Ok(a),
        other => Err(other),
    })?;
    let domain = assignment.domain;
    let task_id = assignment.task_id;
    let Materialized { leaves, .. } = materialize(task, screener, domain, behaviour, ledger);
    let width = task.output_width();
    let mut data = Vec::with_capacity(leaves.len() * width);
    for leaf in &leaves {
        data.extend_from_slice(leaf);
    }
    endpoint.send(&Message::AllResults {
        task_id,
        leaf_width: width as u32,
        data,
    })?;
    let accepted = recv_matching(endpoint, "Verdict", |msg| match msg {
        Message::Verdict {
            task_id: tid,
            accepted,
        } => Ok((tid, accepted)),
        other => Err(other),
    })
    .and_then(|(tid, accepted)| {
        check_task(task_id, tid)?;
        Ok(accepted)
    })?;
    Ok(accepted)
}

/// Runs the supervisor against two replicas: assign the same domain to
/// both, compare their uploads byte-for-byte, screen the agreed results.
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn supervisor_double_check<T, S>(
    endpoint_a: &Endpoint,
    endpoint_b: &Endpoint,
    task: &T,
    screener: &S,
    domain: Domain,
    config: &DoubleCheckConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    T: ComputeTask,
    S: Screener,
{
    let task_id = config.task_id;
    let assignment = Message::Assign(Assignment { task_id, domain });
    endpoint_a.send(&assignment)?;
    endpoint_b.send(&assignment)?;

    let recv_upload = |endpoint: &Endpoint| -> Result<Vec<u8>, SchemeError> {
        recv_matching(endpoint, "AllResults", |msg| match msg {
            Message::AllResults {
                task_id: tid,
                leaf_width,
                data,
            } => Ok((tid, leaf_width, data)),
            other => Err(other),
        })
        .and_then(|(tid, width, data)| {
            check_task(task_id, tid)?;
            if width as usize != task.output_width()
                || data.len() as u64 != domain.len() * width as u64
            {
                return Err(SchemeError::MalformedPayload {
                    what: "flat results layout",
                });
            }
            Ok(data)
        })
    };
    let data_a = recv_upload(endpoint_a)?;
    let data_b = recv_upload(endpoint_b)?;

    let width = task.output_width();
    let verdict = match (0..domain.len()).find(|&i| {
        let lo = (i as usize) * width;
        data_a[lo..lo + width] != data_b[lo..lo + width]
    }) {
        Some(index) => Verdict::ReplicaDisagreement { index },
        None => Verdict::Accepted,
    };

    let mut reports = Vec::new();
    if verdict.is_accepted() {
        for i in 0..domain.len() {
            let x = domain.input(i).expect("index within domain");
            let lo = (i as usize) * width;
            if let Some(report) = screener.screen(x, &data_a[lo..lo + width]) {
                reports.push(report);
            }
        }
    }
    let verdict_msg = Message::Verdict {
        task_id,
        accepted: verdict.is_accepted(),
    };
    endpoint_a.send(&verdict_msg)?;
    endpoint_b.send(&verdict_msg)?;
    // The comparison itself is linear but cheap; we charge one verify op
    // per compared record for the cost tables.
    ledger.charge_verify(domain.len());
    Ok((verdict, reports))
}

/// Runs a complete double-check round: two replicas on scoped threads.
///
/// The returned outcome's `participant_costs` is the **sum over both
/// replicas** — the paper's point is precisely that this doubles the spent
/// cycles.
///
/// # Errors
///
/// Propagates the supervisor's error if multiple sides fail.
pub fn run_double_check<T, S, BA, BB>(
    task: &T,
    screener: &S,
    domain: Domain,
    replica_a: &BA,
    replica_b: &BB,
    config: &DoubleCheckConfig,
) -> Result<RoundOutcome, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    BA: WorkerBehaviour,
    BB: WorkerBehaviour,
{
    let (sup_a, part_a) = duplex();
    let (sup_b, part_b) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new(); // shared: we want the total burn

    let (sup_result, a_result, b_result, link) = std::thread::scope(|scope| {
        // Each replica owns its endpoint so an early exit unblocks the
        // supervisor mid-recv.
        let ledger_a = part_ledger.clone();
        let ledger_b = part_ledger.clone();
        let handle_a = scope
            .spawn(move || participant_double_check(&part_a, task, screener, replica_a, &ledger_a));
        let handle_b = scope
            .spawn(move || participant_double_check(&part_b, task, screener, replica_b, &ledger_b));
        let sup =
            supervisor_double_check(&sup_a, &sup_b, task, screener, domain, config, &sup_ledger);
        let mut link = sup_a.stats();
        let b_stats = sup_b.stats();
        link.bytes_sent += b_stats.bytes_sent;
        link.bytes_received += b_stats.bytes_received;
        link.messages_sent += b_stats.messages_sent;
        link.messages_received += b_stats.messages_received;
        // Unblock waiting replicas if the supervisor bailed early.
        drop(sup_a);
        drop(sup_b);
        (
            sup,
            handle_a.join().expect("replica A panicked"),
            handle_b.join().expect("replica B panicked"),
            link,
        )
    });

    let (verdict, reports) = sup_result?;
    let _ = a_result?;
    let _ = b_result?;
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    const CONFIG: DoubleCheckConfig = DoubleCheckConfig { task_id: 4 };

    #[test]
    fn two_honest_replicas_agree() {
        let task = PasswordSearch::with_hidden_password(1, 20);
        let screener = task.match_screener();
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &HonestWorker,
            &CONFIG,
        )
        .unwrap();
        assert!(outcome.accepted);
        assert_eq!(outcome.reports.len(), 1);
        // Both replicas burned the full task: 2n evaluations.
        assert_eq!(outcome.participant_costs.f_evals, 128);
    }

    #[test]
    fn cheating_replica_detected_with_certainty() {
        let task = PasswordSearch::with_hidden_password(1, 20);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.9, CheatSelection::Scattered, ZeroGuesser::new(2), 3);
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &cheater,
            &CONFIG,
        )
        .unwrap();
        assert!(!outcome.accepted);
        assert!(matches!(
            outcome.verdict,
            Verdict::ReplicaDisagreement { .. }
        ));
    }

    #[test]
    fn colluding_identical_cheaters_evade() {
        // The known blind spot: identical deterministic cheaters agree.
        let task = PasswordSearch::with_hidden_password(1, 20);
        let screener = task.match_screener();
        let cheater_a = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(7), 1);
        let cheater_b = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(7), 1);
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &cheater_a,
            &cheater_b,
            &CONFIG,
        )
        .unwrap();
        assert!(
            outcome.accepted,
            "colluding replicas slip through double-check"
        );
    }

    #[test]
    fn traffic_is_double_the_naive_upload() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 256),
            &HonestWorker,
            &HonestWorker,
            &CONFIG,
        )
        .unwrap();
        // Two uploads of n × 16 bytes dominate the inbound traffic.
        assert!(outcome.supervisor_link.bytes_received as f64 > 2.0 * 256.0 * 16.0);
    }

    #[test]
    fn disagreement_reports_first_divergent_index() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        // Cheater honest on prefix 32 of 64: first divergence at 32.
        let cheater = SemiHonestCheater::new(0.5, CheatSelection::Prefix, ZeroGuesser::new(5), 9);
        let outcome = run_double_check(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &cheater,
            &CONFIG,
        )
        .unwrap();
        assert_eq!(outcome.verdict, Verdict::ReplicaDisagreement { index: 32 });
    }
}
