//! The ringer scheme of Golle and Mironov (the paper's Section 1.1
//! baseline).
//!
//! The supervisor pre-computes `f` on `d` secret inputs and sends the
//! *results* to the participant, who must report which inputs produce
//! them. Because `f` is one-way, the participant cannot find the ringers
//! without actually evaluating `f` across its domain; a cheater with
//! honesty ratio `r` misses each ringer independently with probability
//! `1 − r`, so detection is `1 − r^d`.
//!
//! Limitations the paper highlights (and this module demonstrates in
//! tests): it only works for one-way `f`, and the supervisor pays `d`
//! full evaluations per participant up front.

use crate::scheme::{check_task, materialize, recv_matching, Materialized};
use crate::{RoundOutcome, SchemeError, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use ugc_grid::{duplex, Assignment, CostLedger, Endpoint, Message, WorkerBehaviour};
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Ringer-scheme parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingerConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
    /// Number of ringers `d` planted in the domain.
    pub ringers: usize,
    /// Seed for secret ringer placement.
    pub seed: u64,
}

/// Runs the participant side: evaluate the domain, report any result that
/// matches a ringer, plus the screened results.
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn participant_ringer<T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let assignment = recv_matching(endpoint, "Assign", |msg| match msg {
        Message::Assign(a) => Ok(a),
        other => Err(other),
    })?;
    let domain = assignment.domain;
    let task_id = assignment.task_id;
    let ringers = recv_matching(endpoint, "RingerChallenge", |msg| match msg {
        Message::RingerChallenge {
            task_id: tid,
            ringers,
        } => Ok((tid, ringers)),
        other => Err(other),
    })
    .and_then(|(tid, ringers)| {
        check_task(task_id, tid)?;
        Ok(ringers)
    })?;
    let ringer_set: BTreeSet<&[u8]> = ringers.iter().map(Vec::as_slice).collect();

    let Materialized { leaves, reports } = materialize(task, screener, domain, behaviour, ledger);
    let mut found = Vec::new();
    for (i, leaf) in leaves.iter().enumerate() {
        if ringer_set.contains(leaf.as_slice()) {
            found.push(domain.input(i as u64).expect("index within domain"));
        }
    }
    endpoint.send(&Message::RingerFound {
        task_id,
        inputs: found,
    })?;
    endpoint.send(&Message::Reports {
        task_id,
        reports: reports.into_iter().map(|r| (r.input, r.payload)).collect(),
    })?;

    let accepted = recv_matching(endpoint, "Verdict", |msg| match msg {
        Message::Verdict {
            task_id: tid,
            accepted,
        } => Ok((tid, accepted)),
        other => Err(other),
    })
    .and_then(|(tid, accepted)| {
        check_task(task_id, tid)?;
        Ok(accepted)
    })?;
    Ok(accepted)
}

/// Runs the supervisor side: plant `d` secret ringers, check they all come
/// back.
///
/// # Errors
///
/// Transport failures, malformed peer messages, or invalid configuration
/// (more ringers than domain inputs, or zero ringers).
pub fn supervisor_ringer<T, S>(
    endpoint: &Endpoint,
    task: &T,
    _screener: &S,
    domain: Domain,
    config: &RingerConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    T: ComputeTask,
    S: Screener,
{
    if config.ringers == 0 {
        return Err(SchemeError::InvalidConfig {
            reason: "need at least one ringer",
        });
    }
    if config.ringers as u64 > domain.len() {
        return Err(SchemeError::InvalidConfig {
            reason: "more ringers than domain inputs",
        });
    }
    let task_id = config.task_id;

    // Plant d distinct secret inputs and pre-compute their results.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7269_6e67);
    let mut secret_inputs = BTreeSet::new();
    while secret_inputs.len() < config.ringers {
        let i = rng.random_range(0..domain.len());
        secret_inputs.insert(domain.input(i).expect("sample within domain"));
    }
    let mut ringer_values: Vec<Vec<u8>> = secret_inputs
        .iter()
        .map(|&x| {
            ledger.charge_f(task.unit_cost());
            task.compute(x)
        })
        .collect();
    // Sort the values so their order leaks nothing about input order.
    ringer_values.sort();

    endpoint.send(&Message::Assign(Assignment { task_id, domain }))?;
    endpoint.send(&Message::RingerChallenge {
        task_id,
        ringers: ringer_values,
    })?;

    let found = recv_matching(endpoint, "RingerFound", |msg| match msg {
        Message::RingerFound {
            task_id: tid,
            inputs,
        } => Ok((tid, inputs)),
        other => Err(other),
    })
    .and_then(|(tid, inputs)| {
        check_task(task_id, tid)?;
        Ok(inputs)
    })?;
    let wire_reports = recv_matching(endpoint, "Reports", |msg| match msg {
        Message::Reports {
            task_id: tid,
            reports,
        } => Ok((tid, reports)),
        other => Err(other),
    })
    .and_then(|(tid, reports)| {
        check_task(task_id, tid)?;
        Ok(reports)
    })?;

    let found_set: BTreeSet<u64> = found.into_iter().collect();
    ledger.charge_verify(config.ringers as u64);
    let verdict = if found_set.is_superset(&secret_inputs) {
        // Extra claims are tolerated only if they are true preimages of a
        // planted value, which by construction they are not (values are
        // unique per input for our tasks); reject any overclaim.
        if found_set.len() == secret_inputs.len() {
            Verdict::Accepted
        } else {
            Verdict::RingerMissed
        }
    } else {
        Verdict::RingerMissed
    };

    endpoint.send(&Message::Verdict {
        task_id,
        accepted: verdict.is_accepted(),
    })?;
    let reports = wire_reports
        .into_iter()
        .map(|(input, payload)| ScreenReport { input, payload })
        .collect();
    Ok((verdict, reports))
}

/// Runs a complete ringer round in-process.
///
/// # Errors
///
/// Propagates the supervisor's error if both sides fail.
pub fn run_ringer<T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    config: &RingerConfig,
) -> Result<RoundOutcome, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let (sup_ep, part_ep) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new();

    let (sup_result, part_result, link) = std::thread::scope(|scope| {
        // The participant owns its endpoint so that an early exit (error or
        // completion) drops it and unblocks a supervisor mid-recv.
        let thread_ledger = part_ledger.clone();
        let part_handle = scope
            .spawn(move || participant_ringer(&part_ep, task, screener, behaviour, &thread_ledger));
        let sup = supervisor_ringer(&sup_ep, task, screener, domain, config, &sup_ledger);
        let link = sup_ep.stats();
        // Unblock a waiting participant if the supervisor bailed early.
        drop(sup_ep);
        let part = part_handle.join().expect("participant thread panicked");
        (sup, part, link)
    });

    let (verdict, reports) = sup_result?;
    let _ = part_result?;
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(d: usize, seed: u64) -> RingerConfig {
        RingerConfig {
            task_id: 5,
            ringers: d,
            seed,
        }
    }

    #[test]
    fn honest_participant_finds_all_ringers() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        for seed in 0..5 {
            let outcome = run_ringer(
                &task,
                &screener,
                Domain::new(0, 128),
                &HonestWorker,
                &config(6, seed),
            )
            .unwrap();
            assert!(outcome.accepted, "seed {seed}");
        }
    }

    #[test]
    fn lazy_cheater_misses_ringers() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(4), 6);
        // With r = 0.3 and d = 8 the evasion probability is 0.3^8 ≈ 6.6e-5.
        let outcome = run_ringer(
            &task,
            &screener,
            Domain::new(0, 256),
            &cheater,
            &config(8, 3),
        )
        .unwrap();
        assert!(!outcome.accepted);
        assert_eq!(outcome.verdict, Verdict::RingerMissed);
    }

    #[test]
    fn supervisor_pays_d_evaluations_upfront() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        let outcome = run_ringer(
            &task,
            &screener,
            Domain::new(0, 128),
            &HonestWorker,
            &config(7, 1),
        )
        .unwrap();
        assert_eq!(outcome.supervisor_costs.f_evals, 7 * task.unit_cost());
    }

    #[test]
    fn traffic_is_constant_in_n() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        let small = run_ringer(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &config(4, 1),
        )
        .unwrap();
        let large = run_ringer(
            &task,
            &screener,
            Domain::new(0, 4096),
            &HonestWorker,
            &config(4, 1),
        )
        .unwrap();
        // Only screened reports vary; the protocol itself is O(d).
        let diff = large.supervisor_link.bytes_received as i64
            - small.supervisor_link.bytes_received as i64;
        assert!(
            diff.unsigned_abs() < 256,
            "ringer traffic varied by {diff} bytes across a 64× domain"
        );
    }

    #[test]
    fn too_many_ringers_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        let err = run_ringer(
            &task,
            &screener,
            Domain::new(0, 4),
            &HonestWorker,
            &config(5, 1),
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn overclaiming_participant_rejected() {
        // A participant that spams extra "found" inputs must not pass.
        let task = PasswordSearch::with_hidden_password(1, 2);
        let domain = Domain::new(0, 32);
        let (sup_ep, part_ep) = duplex();
        let ledger = CostLedger::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _ = part_ep.recv(); // Assign
                let _ = part_ep.recv(); // RingerChallenge
                part_ep
                    .send(&Message::RingerFound {
                        task_id: 5,
                        inputs: (0..32).collect(), // claim everything
                    })
                    .unwrap();
                part_ep
                    .send(&Message::Reports {
                        task_id: 5,
                        reports: vec![],
                    })
                    .unwrap();
                let _ = part_ep.recv();
            });
            let screener = task.match_screener();
            let (verdict, _) =
                supervisor_ringer(&sup_ep, &task, &screener, domain, &config(3, 2), &ledger)
                    .unwrap();
            assert_eq!(verdict, Verdict::RingerMissed);
        });
    }
}
