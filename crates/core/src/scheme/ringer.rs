//! The ringer scheme of Golle and Mironov (the paper's Section 1.1
//! baseline).
//!
//! The supervisor pre-computes `f` on `d` secret inputs and sends the
//! *results* to the participant, who must report which inputs produce
//! them. Because `f` is one-way, the participant cannot find the ringers
//! without actually evaluating `f` across its domain; a cheater with
//! honesty ratio `r` misses each ringer independently with probability
//! `1 − r`, so detection is `1 − r^d`.
//!
//! Limitations the paper highlights (and this module demonstrates in
//! tests): it only works for one-way `f`, and the supervisor pays `d`
//! full evaluations per participant up front.

use crate::scheme::{check_task, materialize, Materialized};
use crate::session::{
    drive_participant, drive_supervisor, unexpected, Outbound, ParticipantContext,
    ParticipantSession, SessionOutcome, SupervisorContext, SupervisorSession, VerificationScheme,
};
use crate::{RoundOutcome, SchemeError, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use ugc_grid::{duplex, Assignment, CostLedger, Endpoint, Message, WorkerBehaviour};
use ugc_hash::HashFunction;
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Ringer-scheme parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingerConfig {
    /// Task identifier carried on every message.
    pub task_id: u64,
    /// Number of ringers `d` planted in the domain.
    pub ringers: usize,
    /// Seed for secret ringer placement.
    pub seed: u64,
}

/// The ringer scheme as a [`VerificationScheme`].
///
/// Parameters mirror [`RingerConfig`] minus the task id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingerScheme {
    /// Number of ringers `d` planted in the domain.
    pub ringers: usize,
    /// Seed for secret ringer placement.
    pub seed: u64,
}

impl<H: HashFunction> VerificationScheme<H> for RingerScheme {
    fn name(&self) -> &'static str {
        "ringer"
    }

    fn supervisor_session<'a>(
        &'a self,
        ctx: SupervisorContext<'a>,
    ) -> Box<dyn SupervisorSession + 'a> {
        Box::new(RingerSupervisorSession {
            scheme: *self,
            task_id: ctx.task_ids.first().copied().unwrap_or_default(),
            task: ctx.task,
            domain: ctx.domain,
            ledger: ctx.ledger,
            state: SupState::NotStarted,
            outcome: None,
        })
    }

    fn participant_session<'a>(
        &'a self,
        ctx: ParticipantContext<'a>,
    ) -> Box<dyn ParticipantSession + 'a> {
        Box::new(RingerParticipantSession {
            task: ctx.task,
            screener: ctx.screener,
            behaviour: ctx.behaviour,
            ledger: ctx.ledger,
            state: PartState::AwaitAssign,
        })
    }
}

enum SupState {
    NotStarted,
    AwaitFound { secret_inputs: BTreeSet<u64> },
    AwaitReports { verdict: Verdict },
    Done,
}

struct RingerSupervisorSession<'a> {
    scheme: RingerScheme,
    task_id: u64,
    task: &'a dyn ComputeTask,
    domain: Domain,
    ledger: CostLedger,
    state: SupState,
    outcome: Option<SessionOutcome>,
}

impl SupervisorSession for RingerSupervisorSession<'_> {
    fn start(&mut self) -> Result<Vec<Outbound>, SchemeError> {
        if self.scheme.ringers == 0 {
            return Err(SchemeError::InvalidConfig {
                reason: "need at least one ringer",
            });
        }
        if self.scheme.ringers as u64 > self.domain.len() {
            return Err(SchemeError::InvalidConfig {
                reason: "more ringers than domain inputs",
            });
        }
        // Plant d distinct secret inputs and pre-compute their results.
        let mut rng = StdRng::seed_from_u64(self.scheme.seed ^ 0x7269_6e67);
        let mut secret_inputs = BTreeSet::new();
        while secret_inputs.len() < self.scheme.ringers {
            let i = rng.random_range(0..self.domain.len());
            secret_inputs.insert(self.domain.input(i).expect("sample within domain"));
        }
        // Batch the precomputation through the task's lane kernels (a
        // hash-bound task hashes all ringers together); the charge is one
        // unit cost per input, identical to scalar evaluation.
        let inputs: Vec<u64> = secret_inputs.iter().copied().collect();
        self.ledger
            .charge_f(self.task.unit_cost() * inputs.len() as u64);
        let mut ringer_values: Vec<Vec<u8>> = self.task.compute_batch(&inputs);
        // Sort the values so their order leaks nothing about input order.
        ringer_values.sort();
        self.state = SupState::AwaitFound { secret_inputs };
        Ok(vec![
            (
                0,
                Message::Assign(Assignment {
                    task_id: self.task_id,
                    domain: self.domain,
                }),
            ),
            (
                0,
                Message::RingerChallenge {
                    task_id: self.task_id,
                    ringers: ringer_values,
                },
            ),
        ])
    }

    fn on_message(&mut self, _slot: usize, msg: Message) -> Result<Vec<Outbound>, SchemeError> {
        match std::mem::replace(&mut self.state, SupState::Done) {
            SupState::AwaitFound { secret_inputs } => {
                let Message::RingerFound { task_id, inputs } = msg else {
                    return unexpected("RingerFound", &msg);
                };
                check_task(self.task_id, task_id)?;
                let found_set: BTreeSet<u64> = inputs.into_iter().collect();
                self.ledger.charge_verify(self.scheme.ringers as u64);
                let verdict = if found_set.is_superset(&secret_inputs) {
                    // Extra claims are tolerated only if they are true
                    // preimages of a planted value, which by construction
                    // they are not (values are unique per input for our
                    // tasks); reject any overclaim.
                    if found_set.len() == secret_inputs.len() {
                        Verdict::Accepted
                    } else {
                        Verdict::RingerMissed
                    }
                } else {
                    Verdict::RingerMissed
                };
                self.state = SupState::AwaitReports { verdict };
                Ok(Vec::new())
            }
            SupState::AwaitReports { verdict } => {
                let Message::Reports { task_id, reports } = msg else {
                    return unexpected("Reports", &msg);
                };
                check_task(self.task_id, task_id)?;
                let verdict_msg = Message::Verdict {
                    task_id: self.task_id,
                    accepted: verdict.is_accepted(),
                };
                self.outcome = Some(SessionOutcome {
                    verdict,
                    reports: reports
                        .into_iter()
                        .map(|(input, payload)| ScreenReport { input, payload })
                        .collect(),
                });
                Ok(vec![(0, verdict_msg)])
            }
            SupState::NotStarted | SupState::Done => unexpected("nothing (session finished)", &msg),
        }
    }

    fn take_outcome(&mut self) -> Option<SessionOutcome> {
        self.outcome.take()
    }
}

enum PartState {
    AwaitAssign,
    AwaitChallenge { task_id: u64, domain: Domain },
    AwaitVerdict { task_id: u64 },
    Done(bool),
}

struct RingerParticipantSession<'a> {
    task: &'a dyn ComputeTask,
    screener: &'a dyn Screener,
    behaviour: &'a dyn WorkerBehaviour,
    ledger: CostLedger,
    state: PartState,
}

impl ParticipantSession for RingerParticipantSession<'_> {
    fn on_message(&mut self, msg: Message) -> Result<Vec<Message>, SchemeError> {
        match std::mem::replace(&mut self.state, PartState::AwaitAssign) {
            PartState::AwaitAssign => {
                let Message::Assign(assignment) = msg else {
                    return unexpected("Assign", &msg);
                };
                self.state = PartState::AwaitChallenge {
                    task_id: assignment.task_id,
                    domain: assignment.domain,
                };
                Ok(Vec::new())
            }
            PartState::AwaitChallenge { task_id, domain } => {
                let Message::RingerChallenge {
                    task_id: tid,
                    ringers,
                } = msg
                else {
                    return unexpected("RingerChallenge", &msg);
                };
                check_task(task_id, tid)?;
                let ringer_set: BTreeSet<&[u8]> = ringers.iter().map(Vec::as_slice).collect();
                let Materialized { leaves, reports } = materialize(
                    self.task,
                    self.screener,
                    domain,
                    self.behaviour,
                    &self.ledger,
                );
                let mut found = Vec::new();
                for (i, leaf) in leaves.iter().enumerate() {
                    if ringer_set.contains(leaf.as_slice()) {
                        found.push(domain.input(i as u64).expect("index within domain"));
                    }
                }
                self.state = PartState::AwaitVerdict { task_id };
                Ok(vec![
                    Message::RingerFound {
                        task_id,
                        inputs: found,
                    },
                    Message::Reports {
                        task_id,
                        reports: reports.into_iter().map(|r| (r.input, r.payload)).collect(),
                    },
                ])
            }
            PartState::AwaitVerdict { task_id } => {
                let Message::Verdict {
                    task_id: tid,
                    accepted,
                } = msg
                else {
                    return unexpected("Verdict", &msg);
                };
                check_task(task_id, tid)?;
                self.state = PartState::Done(accepted);
                Ok(Vec::new())
            }
            done @ PartState::Done(_) => {
                self.state = done;
                unexpected("nothing (session finished)", &msg)
            }
        }
    }

    fn finished(&self) -> Option<bool> {
        match self.state {
            PartState::Done(accepted) => Some(accepted),
            _ => None,
        }
    }
}

/// Runs the participant side: evaluate the domain, report any result that
/// matches a ringer, plus the screened results. A thin wrapper driving
/// the scheme's [`ParticipantSession`].
///
/// # Errors
///
/// Transport failures or malformed peer messages.
pub fn participant_ringer<T, S, B>(
    endpoint: &Endpoint,
    task: &T,
    screener: &S,
    behaviour: &B,
    ledger: &CostLedger,
) -> Result<bool, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let mut session = RingerParticipantSession {
        task,
        screener,
        behaviour,
        ledger: ledger.clone(),
        state: PartState::AwaitAssign,
    };
    drive_participant(endpoint, &mut session)
}

/// Runs the supervisor side: plant `d` secret ringers, check they all come
/// back.
///
/// # Errors
///
/// Transport failures, malformed peer messages, or invalid configuration
/// (more ringers than domain inputs, or zero ringers).
pub fn supervisor_ringer<T, S>(
    endpoint: &Endpoint,
    task: &T,
    _screener: &S,
    domain: Domain,
    config: &RingerConfig,
    ledger: &CostLedger,
) -> Result<(Verdict, Vec<ScreenReport>), SchemeError>
where
    T: ComputeTask,
    S: Screener,
{
    let scheme = RingerScheme {
        ringers: config.ringers,
        seed: config.seed,
    };
    let mut session = RingerSupervisorSession {
        scheme,
        task_id: config.task_id,
        task,
        domain,
        ledger: ledger.clone(),
        state: SupState::NotStarted,
        outcome: None,
    };
    let outcome = drive_supervisor(&[endpoint], &mut session)?;
    Ok((outcome.verdict, outcome.reports))
}

/// Runs a complete ringer round in-process.
///
/// # Errors
///
/// Propagates the supervisor's error if both sides fail.
pub fn run_ringer<T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    behaviour: &B,
    config: &RingerConfig,
) -> Result<RoundOutcome, SchemeError>
where
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let (sup_ep, part_ep) = duplex();
    let sup_ledger = CostLedger::new();
    let part_ledger = CostLedger::new();

    let (sup_result, part_result, link) = std::thread::scope(|scope| {
        // The participant owns its endpoint so that an early exit (error or
        // completion) drops it and unblocks a supervisor mid-recv.
        let thread_ledger = part_ledger.clone();
        let part_handle = scope
            .spawn(move || participant_ringer(&part_ep, task, screener, behaviour, &thread_ledger));
        let sup = supervisor_ringer(&sup_ep, task, screener, domain, config, &sup_ledger);
        let link = sup_ep.stats();
        // Unblock a waiting participant if the supervisor bailed early.
        drop(sup_ep);
        let part = part_handle.join().expect("participant thread panicked");
        (sup, part, link)
    });

    let (verdict, reports) = sup_result?;
    let _ = part_result?;
    Ok(RoundOutcome::new(
        verdict,
        sup_ledger.report(),
        part_ledger.report(),
        link,
        reports,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(d: usize, seed: u64) -> RingerConfig {
        RingerConfig {
            task_id: 5,
            ringers: d,
            seed,
        }
    }

    #[test]
    fn honest_participant_finds_all_ringers() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        for seed in 0..5 {
            let outcome = run_ringer(
                &task,
                &screener,
                Domain::new(0, 128),
                &HonestWorker,
                &config(6, seed),
            )
            .unwrap();
            assert!(outcome.accepted, "seed {seed}");
        }
    }

    #[test]
    fn lazy_cheater_misses_ringers() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(4), 6);
        // With r = 0.3 and d = 8 the evasion probability is 0.3^8 ≈ 6.6e-5.
        let outcome = run_ringer(
            &task,
            &screener,
            Domain::new(0, 256),
            &cheater,
            &config(8, 3),
        )
        .unwrap();
        assert!(!outcome.accepted);
        assert_eq!(outcome.verdict, Verdict::RingerMissed);
    }

    #[test]
    fn supervisor_pays_d_evaluations_upfront() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        let outcome = run_ringer(
            &task,
            &screener,
            Domain::new(0, 128),
            &HonestWorker,
            &config(7, 1),
        )
        .unwrap();
        assert_eq!(outcome.supervisor_costs.f_evals, 7 * task.unit_cost());
    }

    #[test]
    fn traffic_is_constant_in_n() {
        let task = PasswordSearch::with_hidden_password(1, 10);
        let screener = task.match_screener();
        let small = run_ringer(
            &task,
            &screener,
            Domain::new(0, 64),
            &HonestWorker,
            &config(4, 1),
        )
        .unwrap();
        let large = run_ringer(
            &task,
            &screener,
            Domain::new(0, 4096),
            &HonestWorker,
            &config(4, 1),
        )
        .unwrap();
        // Only screened reports vary; the protocol itself is O(d).
        let diff = large.supervisor_link.bytes_received as i64
            - small.supervisor_link.bytes_received as i64;
        assert!(
            diff.unsigned_abs() < 256,
            "ringer traffic varied by {diff} bytes across a 64× domain"
        );
    }

    #[test]
    fn too_many_ringers_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 2);
        let screener = task.match_screener();
        let err = run_ringer(
            &task,
            &screener,
            Domain::new(0, 4),
            &HonestWorker,
            &config(5, 1),
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn overclaiming_participant_rejected() {
        // A participant that spams extra "found" inputs must not pass.
        let task = PasswordSearch::with_hidden_password(1, 2);
        let domain = Domain::new(0, 32);
        let (sup_ep, part_ep) = duplex();
        let ledger = CostLedger::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _ = part_ep.recv(); // Assign
                let _ = part_ep.recv(); // RingerChallenge
                part_ep
                    .send(&Message::RingerFound {
                        task_id: 5,
                        inputs: (0..32).collect(), // claim everything
                    })
                    .unwrap();
                part_ep
                    .send(&Message::Reports {
                        task_id: 5,
                        reports: vec![],
                    })
                    .unwrap();
                let _ = part_ep.recv();
            });
            let screener = task.match_screener();
            let (verdict, _) =
                supervisor_ringer(&sup_ep, &task, &screener, domain, &config(3, 2), &ledger)
                    .unwrap();
            assert_eq!(verdict, Verdict::RingerMissed);
        });
    }
}
