//! The verification schemes: the paper's CBS/NI-CBS and all baselines.
//!
//! Each scheme exposes three layers:
//!
//! 1. a *scheme object* ([`cbs::CbsScheme`], [`ni_cbs::NiCbsScheme`],
//!    [`naive::NaiveScheme`], [`double_check::DoubleCheckScheme`],
//!    [`ringer::RingerScheme`]) implementing
//!    [`VerificationScheme`](crate::session::VerificationScheme) — the
//!    message-driven supervisor/participant state machines a
//!    [`SessionEngine`](crate::engine::SessionEngine) multiplexes over any
//!    transport, including a [`Broker`](ugc_grid::Broker);
//! 2. `supervisor_*` / `participant_*` — thin wrappers that drive one
//!    session to completion over a blocking
//!    [`Endpoint`](ugc_grid::Endpoint), and `run_*` — a convenience that
//!    wires a duplex link, runs the participant on a scoped thread, and
//!    returns a [`RoundOutcome`](crate::RoundOutcome) with full cost and
//!    traffic accounting;
//! 3. attack entry points (e.g. [`ni_cbs::retry_attack`]) where the paper
//!    analyses one.

pub mod cbs;
pub mod double_check;
pub mod naive;
pub mod ni_cbs;
pub mod ringer;

use crate::{SchemeError, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugc_grid::{CostLedger, SampleProof, WorkerBehaviour};
use ugc_hash::HashFunction;
use ugc_merkle::MerkleProof;
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Committed leaf values plus the screened reports they induce.
pub(crate) struct Materialized {
    pub leaves: Vec<Vec<u8>>,
    pub reports: Vec<ScreenReport>,
}

/// Evaluates the behaviour over the whole domain once, screening each
/// committed value — the single pass a real participant performs.
pub(crate) fn materialize(
    task: &dyn ComputeTask,
    screener: &dyn Screener,
    domain: Domain,
    behaviour: &dyn WorkerBehaviour,
    ledger: &CostLedger,
) -> Materialized {
    let n = domain.len();
    let mut leaves = Vec::with_capacity(n as usize);
    let mut reports = Vec::new();
    for i in 0..n {
        let value = behaviour.leaf_value(task, domain, i, ledger);
        if let Some(report) = behaviour.report_for(screener, domain, i, &value) {
            reports.push(report);
        }
        leaves.push(value);
    }
    Materialized { leaves, reports }
}

/// Converts a local Merkle proof plus its claimed leaf value to wire form.
pub(crate) fn proof_to_wire<H: HashFunction>(
    proof: &MerkleProof<H>,
    leaf_value: Vec<u8>,
) -> SampleProof {
    SampleProof {
        index: proof.leaf_index(),
        leaf_value,
        leaf_sibling: proof.leaf_sibling().to_vec(),
        digest_siblings: proof
            .digest_siblings()
            .iter()
            .map(|d| d.as_ref().to_vec())
            .collect(),
    }
}

/// Parses a wire proof back into a typed Merkle proof.
pub(crate) fn wire_to_proof<H: HashFunction>(
    wire: &SampleProof,
) -> Result<MerkleProof<H>, SchemeError> {
    let digests = wire
        .digest_siblings
        .iter()
        .map(|bytes| H::digest_from_bytes(bytes))
        .collect::<Option<Vec<_>>>()
        .ok_or(SchemeError::MalformedPayload {
            what: "proof digest sibling",
        })?;
    Ok(MerkleProof::from_parts(
        wire.index,
        wire.leaf_sibling.clone(),
        digests,
    ))
}

/// Step 4 of the CBS scheme for one sample: check the claimed `f(x)` and
/// reconstruct the committed root. `Ok(())` means the sample passed;
/// `Err(verdict)` carries the failure classification.
pub(crate) fn verify_sample<H: HashFunction>(
    task: &dyn ComputeTask,
    domain: Domain,
    committed_root: &H::Digest,
    wire: &SampleProof,
    ledger: &CostLedger,
) -> Result<Result<(), Verdict>, SchemeError> {
    let sample = wire.index;
    let x = match domain.input(sample) {
        Ok(x) => x,
        Err(_) => return Ok(Err(Verdict::WrongResult { sample })),
    };
    // Step 4.1: is the claimed f(x) correct?
    ledger.charge_verify(1);
    if !task.cheap_verification() {
        // Verification recomputes f at full cost.
        ledger.charge_f(task.unit_cost());
    }
    if !task.verify(x, &wire.leaf_value) {
        return Ok(Err(Verdict::WrongResult { sample }));
    }
    // Step 4.2: does Λ(f(x), λ₁…λ_H) reproduce the commitment?
    let proof = wire_to_proof::<H>(wire)?;
    ledger.charge_hash(proof.verification_hash_ops());
    if !proof.verify(committed_root, &wire.leaf_value) {
        return Ok(Err(Verdict::CommitmentMismatch { sample }));
    }
    Ok(Ok(()))
}

/// Audits up to `audit` screened reports by recomputing `f` on the
/// reported inputs: payloads must match the true result and genuinely pass
/// the screener. Catches the malicious model's corrupted reports.
///
/// This is an extension beyond the paper's Section 3 (which focuses on the
/// semi-honest model); see DESIGN.md.
pub(crate) fn audit_reports(
    task: &dyn ComputeTask,
    screener: &dyn Screener,
    domain: Domain,
    reports: &[(u64, Vec<u8>)],
    audit: usize,
    seed: u64,
    ledger: &CostLedger,
) -> Option<Verdict> {
    if audit == 0 || reports.is_empty() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0061_7564_6974);
    for _ in 0..audit.min(reports.len()) {
        let (input, payload) = &reports[rng.random_range(0..reports.len())];
        if !domain.contains(*input) {
            return Some(Verdict::ReportMismatch { input: *input });
        }
        ledger.charge_f(task.unit_cost());
        let truth = task.compute(*input);
        match screener.screen(*input, &truth) {
            Some(expected) if &expected.payload == payload => {}
            _ => return Some(Verdict::ReportMismatch { input: *input }),
        }
    }
    None
}

/// Checks a task-id echo.
pub(crate) fn check_task(expected: u64, got: u64) -> Result<(), SchemeError> {
    if expected == got {
        Ok(())
    } else {
        Err(SchemeError::TaskMismatch { expected, got })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::HonestWorker;
    use ugc_hash::Sha256;
    use ugc_merkle::MerkleTree;
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::AcceptAllScreener;

    fn setup() -> (PasswordSearch, Domain, Vec<Vec<u8>>, MerkleTree<Sha256>) {
        let task = PasswordSearch::with_hidden_password(3, 5);
        let domain = Domain::new(0, 16);
        let leaves: Vec<Vec<u8>> = (0..16).map(|x| task.compute(x)).collect();
        let tree = MerkleTree::build(&leaves).unwrap();
        (task, domain, leaves, tree)
    }

    #[test]
    fn materialize_screens_and_counts() {
        let (task, domain, leaves, _) = setup();
        let ledger = CostLedger::new();
        let m = materialize(&task, &AcceptAllScreener, domain, &HonestWorker, &ledger);
        assert_eq!(m.leaves, leaves);
        assert_eq!(m.reports.len(), 16);
        assert_eq!(ledger.report().f_evals, 16);
    }

    #[test]
    fn proof_wire_roundtrip() {
        let (_, _, leaves, tree) = setup();
        let proof = tree.prove(7).unwrap();
        let wire = proof_to_wire(&proof, leaves[7].clone());
        let back = wire_to_proof::<Sha256>(&wire).unwrap();
        assert_eq!(back, proof);
        assert!(back.verify(&tree.root(), &wire.leaf_value));
    }

    #[test]
    fn wire_to_proof_rejects_bad_digest_len() {
        let wire = SampleProof {
            index: 0,
            leaf_value: vec![0; 16],
            leaf_sibling: vec![0; 16],
            digest_siblings: vec![vec![0; 31]],
        };
        assert_eq!(
            wire_to_proof::<Sha256>(&wire).unwrap_err(),
            SchemeError::MalformedPayload {
                what: "proof digest sibling"
            }
        );
    }

    #[test]
    fn verify_sample_accepts_honest() {
        let (task, domain, leaves, tree) = setup();
        let ledger = CostLedger::new();
        let proof = tree.prove(4).unwrap();
        let wire = proof_to_wire(&proof, leaves[4].clone());
        let root = tree.root();
        assert_eq!(
            verify_sample::<Sha256>(&task, domain, &root, &wire, &ledger).unwrap(),
            Ok(())
        );
        // Verification recomputed f once and hashed the path.
        assert_eq!(ledger.report().f_evals, task.unit_cost());
        assert_eq!(ledger.report().hash_ops, 4);
    }

    #[test]
    fn verify_sample_rejects_wrong_result() {
        let (task, domain, leaves, tree) = setup();
        let ledger = CostLedger::new();
        let proof = tree.prove(4).unwrap();
        let wire = proof_to_wire(&proof, leaves[5].clone()); // wrong value
        let root = tree.root();
        assert_eq!(
            verify_sample::<Sha256>(&task, domain, &root, &wire, &ledger).unwrap(),
            Err(Verdict::WrongResult { sample: 4 })
        );
    }

    #[test]
    fn verify_sample_rejects_commitment_mismatch() {
        // The participant recomputed the true f(x) after the challenge, but
        // its tree committed to garbage: correct value, wrong path.
        let (task, domain, _, _) = setup();
        let garbage: Vec<Vec<u8>> = (0..16u64).map(|x| vec![x as u8; 16]).collect();
        let garbage_tree: MerkleTree<Sha256> = MerkleTree::build(&garbage).unwrap();
        let ledger = CostLedger::new();
        let proof = garbage_tree.prove(4).unwrap();
        let wire = proof_to_wire(&proof, task.compute(4)); // truthful f(x)…
        let root = garbage_tree.root(); // …but the commitment disagrees
        assert_eq!(
            verify_sample::<Sha256>(&task, domain, &root, &wire, &ledger).unwrap(),
            Err(Verdict::CommitmentMismatch { sample: 4 })
        );
    }

    #[test]
    fn verify_sample_rejects_out_of_domain_index() {
        let (task, domain, leaves, tree) = setup();
        let ledger = CostLedger::new();
        let proof = tree.prove(4).unwrap();
        let mut wire = proof_to_wire(&proof, leaves[4].clone());
        wire.index = 99;
        let root = tree.root();
        assert_eq!(
            verify_sample::<Sha256>(&task, domain, &root, &wire, &ledger).unwrap(),
            Err(Verdict::WrongResult { sample: 99 })
        );
    }

    #[test]
    fn audit_accepts_truthful_reports() {
        let (task, domain, leaves, _) = setup();
        let ledger = CostLedger::new();
        let reports: Vec<(u64, Vec<u8>)> = (0..16u64)
            .map(|x| (x, leaves[x as usize].clone()))
            .collect();
        assert_eq!(
            audit_reports(&task, &AcceptAllScreener, domain, &reports, 8, 1, &ledger),
            None
        );
        assert!(ledger.report().f_evals > 0);
    }

    #[test]
    fn audit_catches_corrupted_payload() {
        let (task, domain, leaves, _) = setup();
        let ledger = CostLedger::new();
        let mut reports: Vec<(u64, Vec<u8>)> = (0..16u64)
            .map(|x| (x, leaves[x as usize].clone()))
            .collect();
        for (_, payload) in reports.iter_mut() {
            payload[0] ^= 0xFF;
        }
        let verdict = audit_reports(&task, &AcceptAllScreener, domain, &reports, 4, 1, &ledger);
        assert!(matches!(verdict, Some(Verdict::ReportMismatch { .. })));
    }

    #[test]
    fn audit_catches_out_of_domain_report() {
        let (task, domain, _, _) = setup();
        let ledger = CostLedger::new();
        let reports = vec![(999u64, vec![0u8; 16])];
        assert_eq!(
            audit_reports(&task, &AcceptAllScreener, domain, &reports, 1, 1, &ledger),
            Some(Verdict::ReportMismatch { input: 999 })
        );
    }

    #[test]
    fn audit_zero_is_noop() {
        let (task, domain, _, _) = setup();
        let ledger = CostLedger::new();
        let reports = vec![(999u64, vec![0u8; 16])];
        assert_eq!(
            audit_reports(&task, &AcceptAllScreener, domain, &reports, 0, 1, &ledger),
            None
        );
        assert_eq!(ledger.report().f_evals, 0);
    }
}
