//! Pluggable transport backends: one API for in-process and
//! cross-process grids.
//!
//! The orchestrator's round loop is written once against
//! [`TransportBackend`]: a backend opens a round by producing the
//! supervisor-side transport the [`SessionEngine`](crate::engine) runs
//! over, plus — when the participants live in this process — the
//! decorated links their sessions are driven on. Two backends ship:
//!
//! * [`InProcessBackend`] — the historical in-memory grids: one
//!   [`duplex`] pair per participant ([`TransportKind::Direct`]) or one
//!   shared link into a relaying [`Broker`](ugc_grid::Broker) pumping on
//!   its own thread ([`TransportKind::Brokered`]).
//! * [`RemoteGridBackend`] — a [`TcpLink`] into a `ugc broker serve`
//!   process that relays to participants in *other* OS processes
//!   ([`TransportKind::Remote`]). The participants report their cost
//!   ledgers and outcomes back as [`SlotReport`] control frames, so a
//!   cross-process campaign produces a summary digest bit-identical to
//!   the in-process brokered run of the same parameters (proven in
//!   `tests/wire_equivalence.rs` and in CI's `cross-process` job).
//!
//! Which backend a fleet uses is configuration
//! ([`MixedFleetConfig::transport`](crate::MixedFleetConfig)), not code:
//! `run_mixed_fleet` builds an [`InProcessBackend`] from the config,
//! while [`run_mixed_fleet_on`](crate::run_mixed_fleet_on) accepts any
//! backend the embedder connected.

use crate::engine::{DirectTransport, EngineEvent, EngineTransport};
use crate::journal::{get_part_result, get_report, put_part_result, put_report};
use crate::orchestrator::chaos_link_id;
use crate::SchemeError;
use std::thread::JoinHandle;
use ugc_grid::codec::{get_u64, put_u64};
use ugc_grid::runtime::{FaultLog, FaultPlan, FaultyEndpoint};
use ugc_grid::{
    duplex, Broker, ControlHandle, CostReport, GridError, Message, RelayStats, TcpLink,
};

/// How a fleet round moves its messages — the one transport-selection
/// knob, threaded from the CLI through [`MixedFleetConfig`](crate::MixedFleetConfig)
/// down to the backend that implements it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// One in-memory link per participant, polled by the engine.
    #[default]
    Direct,
    /// One shared supervisor link into a relaying GRACE-style
    /// [`Broker`](ugc_grid::Broker) that fans out to in-process
    /// participants (Section 4's deployment); the broker pump runs on
    /// its own thread.
    Brokered,
    /// One [`TcpLink`] into a `ugc broker serve` process whose
    /// participants joined from other OS processes. Message-flow
    /// identical to [`Brokered`](Self::Brokered) — the relay is the same
    /// code over sockets — so the two share a digest class.
    Remote,
}

/// The historical name for [`TransportKind`], kept so every existing
/// `FleetTransport::Direct` / `FleetTransport::Brokered` call site (and
/// the journal decoder) compiles unchanged.
pub type FleetTransport = TransportKind;

impl TransportKind {
    /// The digest class this transport belongs to, as journaled in the
    /// [`CampaignHeader`](crate::CampaignHeader): `0` for [`Direct`](Self::Direct),
    /// `1` for the relayed transports. [`Brokered`](Self::Brokered) and
    /// [`Remote`](Self::Remote) deliberately share class `1`: the relay
    /// semantics (round-robin dispatch, `Gone` NACKs, per-message
    /// charging) are identical, so their digests cannot differ and a
    /// campaign may resume across that backend change. `Direct` is a
    /// distinct class — its engine never sees `Gone` NACKs, so resuming
    /// a direct campaign over a relay (or vice versa) is refused.
    #[must_use]
    pub fn digest_class(self) -> u8 {
        match self {
            TransportKind::Direct => 0,
            TransportKind::Brokered | TransportKind::Remote => 1,
        }
    }

    /// The canonical representative of this transport's digest class —
    /// what [`CampaignHeader::for_campaign`](crate::CampaignHeader::for_campaign)
    /// stores, so headers compare equal exactly when digests cannot
    /// differ. Execution-only socket details (addresses, process
    /// layout) never reach the header at all.
    #[must_use]
    pub fn digest_canonical(self) -> Self {
        match self {
            TransportKind::Direct => TransportKind::Direct,
            TransportKind::Brokered | TransportKind::Remote => TransportKind::Brokered,
        }
    }
}

/// One remote participant slot's end-of-session report: everything the
/// supervisor needs from the far side to finish its books — the costs
/// the slot's ledger accumulated and the participant-side outcome.
///
/// Sent by `ugc participant join` as a control frame (outside the
/// charged data plane, exactly like the in-process ledger clones are
/// outside the message flow) once the slot's session completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotReport {
    /// The global slot (== task id: the orchestrator numbers slots with
    /// one counter across the roster).
    pub slot: u64,
    /// The cost ledger delta this slot's session accumulated.
    pub costs: CostReport,
    /// The participant-side result: whether the session found a report
    /// of interest, or the protocol error that killed it.
    pub outcome: Result<bool, SchemeError>,
}

impl SlotReport {
    /// Encodes the report as a control-frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.slot);
        put_report(&mut buf, &self.costs);
        put_part_result(&mut buf, &self.outcome);
        buf
    }

    /// Decodes a control-frame payload.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Journal`] on a malformed or trailing-bytes payload
    /// (the slot-report codec is the journal's).
    pub fn decode(mut bytes: &[u8]) -> Result<Self, SchemeError> {
        let buf = &mut bytes;
        let slot = get_u64(buf, "slot report slot")?;
        let costs = get_report(buf)?;
        let outcome = get_part_result(buf)?;
        if !buf.is_empty() {
            return Err(SchemeError::Journal {
                reason: format!("slot report has {} trailing bytes", buf.len()),
            });
        }
        Ok(SlotReport {
            slot,
            costs,
            outcome,
        })
    }
}

/// The supervisor-side transport a backend opened for one round: either
/// the engine's own per-participant poller, or one shared link whose far
/// side routes (an in-process broker pump or a `ugc broker serve`
/// process).
pub enum EngineSide {
    /// Per-participant endpoints polled directly by the engine.
    Direct(DirectTransport),
    /// One shared, relayed link (boxed: the concrete link type is the
    /// backend's business).
    Shared(Box<dyn EngineTransport + Send>),
}

impl EngineTransport for EngineSide {
    fn send(&mut self, routing_id: u64, msg: &Message) -> Result<u64, GridError> {
        match self {
            EngineSide::Direct(t) => t.send(routing_id, msg),
            EngineSide::Shared(t) => t.send(routing_id, msg),
        }
    }

    fn recv(&mut self) -> Result<EngineEvent, GridError> {
        match self {
            EngineSide::Direct(t) => t.recv(),
            EngineSide::Shared(t) => t.recv(),
        }
    }

    fn try_recv(&mut self) -> Result<Option<EngineEvent>, GridError> {
        match self {
            EngineSide::Direct(t) => t.try_recv(),
            EngineSide::Shared(t) => t.try_recv(),
        }
    }
}

/// What the orchestrator tells a backend about the round it is opening.
#[derive(Debug)]
pub struct RoundSpec<'a> {
    /// The reassignment round number (0 = the initial attempt); feeds
    /// [`chaos_link_id`] so retry rounds draw fresh fault schedules.
    pub round: u32,
    /// One routing id per global slot, in global-slot order — what a
    /// [`TransportKind::Direct`] backend registers each supervisor-side
    /// endpoint under. Relayed backends only need the count.
    pub routing_ids: &'a [u64],
    /// Seeded fault injection for every local participant link (`None`
    /// decorates with the quiet plan). Remote backends refuse chaos:
    /// fault schedules are keyed by link id, and which process hosts
    /// which link is execution layout — exactly what digests must not
    /// depend on.
    pub chaos: Option<FaultPlan>,
}

/// Everything a backend opened for one round.
pub struct OpenRound {
    /// The transport the engine multiplexes supervisor sessions over.
    pub engine_side: EngineSide,
    /// Fault-decorated links for participants hosted *in this process*,
    /// in global-slot order — empty for a remote backend, whose
    /// participants are driven by their own `ugc participant join`
    /// processes.
    pub local_links: Vec<FaultyEndpoint>,
    /// Fault logs of the local links, snapshot by the orchestrator once
    /// the round completes.
    pub fault_logs: Vec<FaultLog>,
    /// The broker pump thread, when the backend runs one; joined by the
    /// orchestrator after the engine side is dropped.
    pub pump: Option<JoinHandle<RelayStats>>,
}

/// A transport backend: where a fleet round's participants live and how
/// the supervisor's messages reach them. Implementations must charge
/// every data-plane message exactly as [`Endpoint`](ugc_grid::Endpoint)
/// does (encoded frame + header) — that equality is what makes digests
/// transport-invariant.
pub trait TransportBackend {
    /// Which transport this backend implements.
    fn kind(&self) -> TransportKind;

    /// Opens one round for `spec.routing_ids.len()` global slots.
    ///
    /// # Errors
    ///
    /// [`SchemeError::InvalidConfig`] when the backend cannot serve the
    /// spec (an in-process backend asked for [`TransportKind::Remote`],
    /// a remote backend asked for chaos or a second round).
    fn open_round(&mut self, spec: &RoundSpec<'_>) -> Result<OpenRound, SchemeError>;

    /// Collects the round's [`SlotReport`]s — one per global slot,
    /// sorted by slot — from participants *not* hosted in this process.
    /// In-process backends return an empty list: their participant
    /// ledgers and outcomes were shared directly.
    ///
    /// Called after the engine finishes but while the round's links are
    /// still open (a remote peer delivers reports over the same
    /// connection).
    ///
    /// # Errors
    ///
    /// Transport failure before all `slots` reports arrived, or a
    /// malformed report.
    fn close_round(&mut self, slots: usize) -> Result<Vec<SlotReport>, SchemeError>;
}

/// The in-process backends: participants on threads in this process,
/// links in memory. Serves [`TransportKind::Direct`] and
/// [`TransportKind::Brokered`]; any number of rounds.
#[derive(Debug, Clone, Copy)]
pub struct InProcessBackend {
    kind: TransportKind,
}

impl InProcessBackend {
    /// A backend for `kind`. Constructing one for
    /// [`TransportKind::Remote`] is allowed (so configs thread through
    /// uniformly) but its `open_round` reports the configuration error.
    #[must_use]
    pub fn new(kind: TransportKind) -> Self {
        InProcessBackend { kind }
    }
}

impl TransportBackend for InProcessBackend {
    fn kind(&self) -> TransportKind {
        self.kind
    }

    fn open_round(&mut self, spec: &RoundSpec<'_>) -> Result<OpenRound, SchemeError> {
        // Chaos-free rounds use the quiet plan rather than a separate
        // undecorated code path: the decorator's transparency at zero
        // rates is property-tested (grid/tests/fault_properties.rs), and
        // one code path means the soak exercises what production runs.
        let plan = spec.chaos.unwrap_or(FaultPlan::quiet(0));
        let slots = spec.routing_ids.len();
        match self.kind {
            TransportKind::Direct => {
                let mut transport = DirectTransport::new();
                let mut links = Vec::with_capacity(slots);
                let mut logs = Vec::with_capacity(slots);
                for (slot, &routing_id) in spec.routing_ids.iter().enumerate() {
                    let (sup_side, part_side) = duplex();
                    transport.add_endpoint(sup_side, [routing_id]);
                    let link =
                        FaultyEndpoint::new(part_side, plan.link(chaos_link_id(spec.round, slot)));
                    logs.push(link.log());
                    links.push(link);
                }
                Ok(OpenRound {
                    engine_side: EngineSide::Direct(transport),
                    local_links: links,
                    fault_logs: logs,
                    pump: None,
                })
            }
            TransportKind::Brokered => {
                let (sup_endpoint, broker_up) = duplex();
                let mut broker_down = Vec::with_capacity(slots);
                let mut links = Vec::with_capacity(slots);
                let mut logs = Vec::with_capacity(slots);
                for slot in 0..slots {
                    let (b, p) = duplex();
                    broker_down.push(b);
                    let link = FaultyEndpoint::new(p, plan.link(chaos_link_id(spec.round, slot)));
                    logs.push(link.log());
                    links.push(link);
                }
                let broker = Broker::new(broker_up, broker_down);
                // Endpoints are `'static`, so the pump outlives the round
                // scope; the orchestrator joins the handle once the engine
                // side is dropped (which is what winds the pump down).
                let pump = std::thread::spawn(move || broker.pump_until_closed());
                Ok(OpenRound {
                    engine_side: EngineSide::Shared(Box::new(sup_endpoint)),
                    local_links: links,
                    fault_logs: logs,
                    pump: Some(pump),
                })
            }
            TransportKind::Remote => Err(SchemeError::InvalidConfig {
                reason: "the in-process backend cannot serve the remote transport; \
                         connect a RemoteGridBackend and call run_mixed_fleet_on",
            }),
        }
    }

    fn close_round(&mut self, _slots: usize) -> Result<Vec<SlotReport>, SchemeError> {
        Ok(Vec::new())
    }
}

/// The cross-process backend: one [`TcpLink`] into a `ugc broker serve`
/// relay whose participants are `ugc participant join` processes.
///
/// Single-round by construction — the connection's task routes belong to
/// the round that made them — and chaos-free: the CLI runs `--connect`
/// campaigns with `retries = 0` and no fault plan, so one round is also
/// all a digest-equivalent campaign needs.
pub struct RemoteGridBackend {
    link: Option<TcpLink>,
    control: ControlHandle,
    patience: std::time::Duration,
}

impl RemoteGridBackend {
    /// Wraps a handshaken supervisor link (from
    /// [`handshake_supervisor`](ugc_grid::tcp::handshake_supervisor)).
    #[must_use]
    pub fn new(link: TcpLink) -> Self {
        let control = link.control_handle();
        RemoteGridBackend {
            link: Some(link),
            control,
            patience: std::time::Duration::from_secs(30),
        }
    }

    /// Overrides how long [`close_round`](TransportBackend::close_round)
    /// waits for each participant cost report before reporting the grid
    /// dead. A hang guard only — tests shorten it to fail fast; it never
    /// feeds verdicts or digests.
    #[must_use]
    pub fn with_patience(mut self, patience: std::time::Duration) -> Self {
        self.patience = patience;
        self
    }
}

impl TransportBackend for RemoteGridBackend {
    fn kind(&self) -> TransportKind {
        TransportKind::Remote
    }

    fn open_round(&mut self, spec: &RoundSpec<'_>) -> Result<OpenRound, SchemeError> {
        if spec.chaos.is_some() {
            return Err(SchemeError::InvalidConfig {
                reason: "the remote backend cannot inject faults: fault schedules are \
                         keyed by link id, and which process hosts which link is \
                         execution layout that digests must not depend on",
            });
        }
        let link = self.link.take().ok_or(SchemeError::InvalidConfig {
            reason: "the remote backend serves a single round per connection",
        })?;
        Ok(OpenRound {
            engine_side: EngineSide::Shared(Box::new(link)),
            local_links: Vec::new(),
            fault_logs: Vec::new(),
            pump: None,
        })
    }

    fn close_round(&mut self, slots: usize) -> Result<Vec<SlotReport>, SchemeError> {
        let mut reports = Vec::with_capacity(slots);
        while reports.len() < slots {
            // The patience window is a hang guard for a participant
            // process that died without reporting (its sessions already
            // failed with `Gone`); it is never an input to verdicts or
            // digests — a report either arrives or the round errors.
            let frame = self
                .control
                .recv_timeout(self.patience)?
                .ok_or(SchemeError::TimedOut)?;
            reports.push(SlotReport::decode(&frame)?);
        }
        // Global-slot order is the in-process participant-result order.
        reports.sort_by_key(|r| r.slot);
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_classes() {
        assert_eq!(TransportKind::Direct.digest_class(), 0);
        assert_eq!(TransportKind::Brokered.digest_class(), 1);
        assert_eq!(TransportKind::Remote.digest_class(), 1);
        assert_eq!(
            TransportKind::Remote.digest_canonical(),
            TransportKind::Brokered
        );
        assert_eq!(
            TransportKind::Direct.digest_canonical(),
            TransportKind::Direct
        );
    }

    #[test]
    fn slot_report_roundtrip() {
        for outcome in [
            Ok(true),
            Ok(false),
            Err(SchemeError::TimedOut),
            Err(SchemeError::InvalidConfig { reason: "x" }),
        ] {
            let report = SlotReport {
                slot: 42,
                costs: CostReport {
                    f_evals: 1,
                    hash_ops: 2,
                    hash_wall_ops: 3,
                    g_evals: 4,
                    verify_ops: 5,
                },
                outcome,
            };
            let decoded = SlotReport::decode(&report.encode()).unwrap();
            assert_eq!(decoded, report);
        }
    }

    #[test]
    fn slot_report_rejects_trailing_bytes() {
        let report = SlotReport {
            slot: 0,
            costs: CostReport::default(),
            outcome: Ok(false),
        };
        let mut bytes = report.encode();
        bytes.push(0);
        assert!(matches!(
            SlotReport::decode(&bytes),
            Err(SchemeError::Journal { .. })
        ));
    }

    #[test]
    fn in_process_backend_refuses_remote() {
        let mut backend = InProcessBackend::new(TransportKind::Remote);
        let err = backend
            .open_round(&RoundSpec {
                round: 0,
                routing_ids: &[0],
                chaos: None,
            })
            .err()
            .expect("backend must refuse this round");
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn remote_backend_refuses_chaos_and_second_rounds() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || listener.accept().unwrap().0);
        let stream = TcpStream::connect(addr).unwrap();
        let _peer = accept.join().unwrap();
        let mut backend = RemoteGridBackend::new(TcpLink::from_stream(stream));
        let err = backend
            .open_round(&RoundSpec {
                round: 0,
                routing_ids: &[0],
                chaos: Some(FaultPlan::chaos(1)),
            })
            .err()
            .expect("backend must refuse this round");
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
        let opened = backend
            .open_round(&RoundSpec {
                round: 0,
                routing_ids: &[0],
                chaos: None,
            })
            .unwrap();
        assert!(opened.local_links.is_empty());
        let err = backend
            .open_round(&RoundSpec {
                round: 1,
                routing_ids: &[0],
                chaos: None,
            })
            .err()
            .expect("backend must refuse this round");
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }
}
