//! Durable campaigns: the record layer between the orchestrator and the
//! `ugc-journal` write-ahead log.
//!
//! The journal crate knows only about opaque payloads; this module gives
//! them meaning. A durable campaign writes one [`CampaignHeader`] record
//! (so `--resume` can reconstruct the run from the file alone), then a
//! strictly sequential stream of round records:
//!
//! | tag | record | written by | contents |
//! |----:|--------|------------|----------|
//! | 1 | `Header` | [`DurableCampaign::create`] | fleet shape, domain, chaos plan, CLI blob |
//! | 2 | `RoundStart` | orchestrator | round number, roster (member indices) |
//! | 3 | `Settled` | session engine | per-session outcome + link stats, in registration order |
//! | 4 | `MemberState` | orchestrator | per-member `CostLedger` deltas + participant results |
//! | 5 | `RoundEnd` | orchestrator | round number, sorted fault events — the commit marker |
//! | 6 | `Finished` | orchestrator | the campaign summary digest, then the seal |
//!
//! Recovery is *round-atomic*: [`DurableCampaign::resume`] replays only
//! rounds that reached their `RoundEnd` commit marker, truncates everything
//! after the last one (including a torn tail), and hands the orchestrator a
//! [`ReplayState`] that seeds its loop exactly where the dead process left
//! off. Because every record the campaign loop writes is a pure function of
//! the seed, the resumed run's verdicts, attempts, cost ledgers and fault
//! log are bit-identical to a never-killed run — the invariant
//! `tests/crash_resume.rs` proves at every kill point.
//!
//! This file is deliberately named `journal.rs`: `ugc-lint`'s `lossy-cast`
//! rule audits journal/codec paths, so every narrowing here must be a
//! checked `try_from`, never an `as`.

use crate::engine::SessionResult;
use crate::orchestrator::{FleetSummary, FleetTransport, MemberSpec, MixedFleetConfig};
use crate::session::SessionOutcome;
use crate::{ParticipantStorage, SchemeError, Verdict};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;
use ugc_grid::codec::{
    get_bytes, get_u32, get_u64, get_u64_list, put_bytes, put_u32, put_u64, put_u64_list,
};
use ugc_grid::runtime::{FaultEvent, FaultPlan, LinkDirection};
use ugc_grid::{CostLedger, CostReport, GridError, LinkStats};
use ugc_hash::{HashFunction, Sha256};
use ugc_journal::{read_journal, CrashPlan, JournalError, JournalWriter, TailStatus};
use ugc_merkle::MerkleError;
use ugc_task::Domain;
use ugc_task::ScreenReport;

/// Maps a journal-crate failure into the scheme error the campaign loop
/// propagates.
fn jerr(e: &JournalError) -> SchemeError {
    SchemeError::Journal {
        reason: e.to_string(),
    }
}

/// A malformed-journal decode failure.
fn bad(reason: String) -> SchemeError {
    SchemeError::Journal { reason }
}

// ---------------------------------------------------------------------------
// Codec primitives the grid codec does not provide.
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn get_u8(buf: &mut &[u8], context: &'static str) -> Result<u8, SchemeError> {
    let Some((&byte, rest)) = buf.split_first() else {
        return Err(bad(format!("unexpected end of record in {context}")));
    };
    *buf = rest;
    Ok(byte)
}

fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

fn get_usize(buf: &mut &[u8], context: &'static str) -> Result<usize, SchemeError> {
    let v = get_u64(buf, context)?;
    usize::try_from(v).map_err(|_| bad(format!("{context}: {v} exceeds this platform's usize")))
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn get_string(buf: &mut &[u8], context: &'static str) -> Result<String, SchemeError> {
    let bytes = get_bytes(buf, context)?;
    String::from_utf8(bytes).map_err(|_| bad(format!("{context}: invalid UTF-8")))
}

/// Decodes a `&'static str` field. The originals are compile-time string
/// literals; round-tripping through the journal has to materialise them,
/// and leaking is the only safe way back to `'static`. Bounded in
/// practice: error strings are short and a resume decodes each record
/// once.
fn get_static_str(buf: &mut &[u8], context: &'static str) -> Result<&'static str, SchemeError> {
    Ok(Box::leak(get_string(buf, context)?.into_boxed_str()))
}

fn put_micros(buf: &mut Vec<u8>, d: Duration) {
    put_u64(buf, u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
}

// ---------------------------------------------------------------------------
// Field codecs for every type a campaign record carries.
// ---------------------------------------------------------------------------

fn put_verdict(buf: &mut Vec<u8>, v: &Verdict) {
    match *v {
        Verdict::Accepted => put_u8(buf, 0),
        Verdict::WrongResult { sample } => {
            put_u8(buf, 1);
            put_u64(buf, sample);
        }
        Verdict::CommitmentMismatch { sample } => {
            put_u8(buf, 2);
            put_u64(buf, sample);
        }
        Verdict::SampleDerivationMismatch => put_u8(buf, 3),
        Verdict::ReportMismatch { input } => {
            put_u8(buf, 4);
            put_u64(buf, input);
        }
        Verdict::RingerMissed => put_u8(buf, 5),
        Verdict::ReplicaDisagreement { index } => {
            put_u8(buf, 6);
            put_u64(buf, index);
        }
    }
}

fn get_verdict(buf: &mut &[u8]) -> Result<Verdict, SchemeError> {
    Ok(match get_u8(buf, "verdict tag")? {
        0 => Verdict::Accepted,
        1 => Verdict::WrongResult {
            sample: get_u64(buf, "verdict sample")?,
        },
        2 => Verdict::CommitmentMismatch {
            sample: get_u64(buf, "verdict sample")?,
        },
        3 => Verdict::SampleDerivationMismatch,
        4 => Verdict::ReportMismatch {
            input: get_u64(buf, "verdict input")?,
        },
        5 => Verdict::RingerMissed,
        6 => Verdict::ReplicaDisagreement {
            index: get_u64(buf, "verdict index")?,
        },
        tag => return Err(bad(format!("unknown verdict tag {tag}"))),
    })
}

fn put_grid_error(buf: &mut Vec<u8>, e: &GridError) {
    match *e {
        GridError::UnexpectedEof { context } => {
            put_u8(buf, 0);
            put_str(buf, context);
        }
        GridError::UnknownTag { tag } => {
            put_u8(buf, 1);
            put_u8(buf, tag);
        }
        GridError::TrailingBytes { remaining } => {
            put_u8(buf, 2);
            put_usize(buf, remaining);
        }
        GridError::LengthOverflow { declared } => {
            put_u8(buf, 3);
            put_u64(buf, declared);
        }
        GridError::Disconnected => put_u8(buf, 4),
        GridError::Empty => put_u8(buf, 5),
        GridError::TornFrame { expected, got } => {
            put_u8(buf, 6);
            put_u64(buf, expected);
            put_u64(buf, got);
        }
        GridError::HandshakeMismatch { ours, theirs } => {
            put_u8(buf, 7);
            put_u32(buf, ours);
            put_u32(buf, theirs);
        }
    }
}

fn get_grid_error(buf: &mut &[u8]) -> Result<GridError, SchemeError> {
    Ok(match get_u8(buf, "grid error tag")? {
        0 => GridError::UnexpectedEof {
            context: get_static_str(buf, "grid error context")?,
        },
        1 => GridError::UnknownTag {
            tag: get_u8(buf, "grid error byte")?,
        },
        2 => GridError::TrailingBytes {
            remaining: get_usize(buf, "grid error remaining")?,
        },
        3 => GridError::LengthOverflow {
            declared: get_u64(buf, "grid error declared")?,
        },
        4 => GridError::Disconnected,
        5 => GridError::Empty,
        6 => GridError::TornFrame {
            expected: get_u64(buf, "grid error expected")?,
            got: get_u64(buf, "grid error got")?,
        },
        7 => GridError::HandshakeMismatch {
            ours: get_u32(buf, "grid error ours")?,
            theirs: get_u32(buf, "grid error theirs")?,
        },
        tag => return Err(bad(format!("unknown grid error tag {tag}"))),
    })
}

fn put_merkle_error(buf: &mut Vec<u8>, e: &MerkleError) {
    match *e {
        MerkleError::EmptyTree => put_u8(buf, 0),
        MerkleError::MixedLeafWidth {
            expected,
            found,
            index,
        } => {
            put_u8(buf, 1);
            put_usize(buf, expected);
            put_usize(buf, found);
            put_u64(buf, index);
        }
        MerkleError::ZeroLeafWidth => put_u8(buf, 2),
        MerkleError::IndexOutOfRange { index, leaf_count } => {
            put_u8(buf, 3);
            put_u64(buf, index);
            put_u64(buf, leaf_count);
        }
        MerkleError::SubtreeHeightOutOfRange {
            subtree_height,
            tree_height,
        } => {
            put_u8(buf, 4);
            put_u32(buf, subtree_height);
            put_u32(buf, tree_height);
        }
        MerkleError::ProviderMismatch { subtree_index } => {
            put_u8(buf, 5);
            put_u64(buf, subtree_index);
        }
    }
}

fn get_merkle_error(buf: &mut &[u8]) -> Result<MerkleError, SchemeError> {
    Ok(match get_u8(buf, "merkle error tag")? {
        0 => MerkleError::EmptyTree,
        1 => MerkleError::MixedLeafWidth {
            expected: get_usize(buf, "merkle expected width")?,
            found: get_usize(buf, "merkle found width")?,
            index: get_u64(buf, "merkle leaf index")?,
        },
        2 => MerkleError::ZeroLeafWidth,
        3 => MerkleError::IndexOutOfRange {
            index: get_u64(buf, "merkle index")?,
            leaf_count: get_u64(buf, "merkle leaf count")?,
        },
        4 => MerkleError::SubtreeHeightOutOfRange {
            subtree_height: get_u32(buf, "merkle subtree height")?,
            tree_height: get_u32(buf, "merkle tree height")?,
        },
        5 => MerkleError::ProviderMismatch {
            subtree_index: get_u64(buf, "merkle subtree index")?,
        },
        tag => return Err(bad(format!("unknown merkle error tag {tag}"))),
    })
}

fn put_scheme_error(buf: &mut Vec<u8>, e: &SchemeError) {
    match e {
        SchemeError::Grid(inner) => {
            put_u8(buf, 0);
            put_grid_error(buf, inner);
        }
        SchemeError::Merkle(inner) => {
            put_u8(buf, 1);
            put_merkle_error(buf, inner);
        }
        SchemeError::UnexpectedMessage { expected, got } => {
            put_u8(buf, 2);
            put_str(buf, expected);
            put_str(buf, got);
        }
        SchemeError::TaskMismatch { expected, got } => {
            put_u8(buf, 3);
            put_u64(buf, *expected);
            put_u64(buf, *got);
        }
        SchemeError::ProofCountMismatch { expected, got } => {
            put_u8(buf, 4);
            put_usize(buf, *expected);
            put_usize(buf, *got);
        }
        SchemeError::InvalidConfig { reason } => {
            put_u8(buf, 5);
            put_str(buf, reason);
        }
        SchemeError::MalformedPayload { what } => {
            put_u8(buf, 6);
            put_str(buf, what);
        }
        SchemeError::TimedOut => put_u8(buf, 7),
        SchemeError::Journal { reason } => {
            put_u8(buf, 8);
            put_str(buf, reason);
        }
    }
}

fn get_scheme_error(buf: &mut &[u8]) -> Result<SchemeError, SchemeError> {
    Ok(match get_u8(buf, "scheme error tag")? {
        0 => SchemeError::Grid(get_grid_error(buf)?),
        1 => SchemeError::Merkle(get_merkle_error(buf)?),
        2 => SchemeError::UnexpectedMessage {
            expected: get_static_str(buf, "scheme error expected")?,
            got: get_static_str(buf, "scheme error got")?,
        },
        3 => SchemeError::TaskMismatch {
            expected: get_u64(buf, "scheme error expected id")?,
            got: get_u64(buf, "scheme error got id")?,
        },
        4 => SchemeError::ProofCountMismatch {
            expected: get_usize(buf, "scheme error expected proofs")?,
            got: get_usize(buf, "scheme error got proofs")?,
        },
        5 => SchemeError::InvalidConfig {
            reason: get_static_str(buf, "scheme error reason")?,
        },
        6 => SchemeError::MalformedPayload {
            what: get_static_str(buf, "scheme error what")?,
        },
        7 => SchemeError::TimedOut,
        8 => SchemeError::Journal {
            reason: get_string(buf, "scheme error journal reason")?,
        },
        tag => return Err(bad(format!("unknown scheme error tag {tag}"))),
    })
}

fn put_link(buf: &mut Vec<u8>, link: &LinkStats) {
    put_u64(buf, link.bytes_sent);
    put_u64(buf, link.bytes_received);
    put_u64(buf, link.messages_sent);
    put_u64(buf, link.messages_received);
}

fn get_link(buf: &mut &[u8]) -> Result<LinkStats, SchemeError> {
    Ok(LinkStats {
        bytes_sent: get_u64(buf, "link bytes sent")?,
        bytes_received: get_u64(buf, "link bytes received")?,
        messages_sent: get_u64(buf, "link messages sent")?,
        messages_received: get_u64(buf, "link messages received")?,
    })
}

pub(crate) fn put_report(buf: &mut Vec<u8>, report: &CostReport) {
    put_u64(buf, report.f_evals);
    put_u64(buf, report.hash_ops);
    put_u64(buf, report.hash_wall_ops);
    put_u64(buf, report.g_evals);
    put_u64(buf, report.verify_ops);
}

pub(crate) fn get_report(buf: &mut &[u8]) -> Result<CostReport, SchemeError> {
    Ok(CostReport {
        f_evals: get_u64(buf, "cost f_evals")?,
        hash_ops: get_u64(buf, "cost hash_ops")?,
        hash_wall_ops: get_u64(buf, "cost hash_wall_ops")?,
        g_evals: get_u64(buf, "cost g_evals")?,
        verify_ops: get_u64(buf, "cost verify_ops")?,
    })
}

fn put_outcome(buf: &mut Vec<u8>, outcome: &SessionOutcome) {
    put_verdict(buf, &outcome.verdict);
    put_usize(buf, outcome.reports.len());
    for report in &outcome.reports {
        put_u64(buf, report.input);
        put_bytes(buf, &report.payload);
    }
}

fn get_outcome(buf: &mut &[u8]) -> Result<SessionOutcome, SchemeError> {
    let verdict = get_verdict(buf)?;
    let count = get_usize(buf, "report count")?;
    let mut reports = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        reports.push(ScreenReport {
            input: get_u64(buf, "report input")?,
            payload: get_bytes(buf, "report payload")?,
        });
    }
    Ok(SessionOutcome { verdict, reports })
}

fn put_session_result(buf: &mut Vec<u8>, outcome: &Result<SessionOutcome, SchemeError>) {
    match outcome {
        Ok(ok) => {
            put_u8(buf, 1);
            put_outcome(buf, ok);
        }
        Err(e) => {
            put_u8(buf, 0);
            put_scheme_error(buf, e);
        }
    }
}

fn get_session_result(buf: &mut &[u8]) -> Result<Result<SessionOutcome, SchemeError>, SchemeError> {
    Ok(match get_u8(buf, "session result tag")? {
        1 => Ok(get_outcome(buf)?),
        0 => Err(get_scheme_error(buf)?),
        tag => return Err(bad(format!("unknown session result tag {tag}"))),
    })
}

pub(crate) fn put_part_result(buf: &mut Vec<u8>, result: &Result<bool, SchemeError>) {
    match result {
        Ok(found) => {
            put_u8(buf, 1);
            put_u8(buf, u8::from(*found));
        }
        Err(e) => {
            put_u8(buf, 0);
            put_scheme_error(buf, e);
        }
    }
}

pub(crate) fn get_part_result(buf: &mut &[u8]) -> Result<Result<bool, SchemeError>, SchemeError> {
    Ok(match get_u8(buf, "participant result tag")? {
        1 => Ok(get_u8(buf, "participant result flag")? != 0),
        0 => Err(get_scheme_error(buf)?),
        tag => return Err(bad(format!("unknown participant result tag {tag}"))),
    })
}

fn put_direction(buf: &mut Vec<u8>, direction: LinkDirection) {
    put_u8(
        buf,
        match direction {
            LinkDirection::Inbound => 0,
            LinkDirection::Outbound => 1,
        },
    );
}

fn get_direction(buf: &mut &[u8]) -> Result<LinkDirection, SchemeError> {
    Ok(match get_u8(buf, "fault direction")? {
        0 => LinkDirection::Inbound,
        1 => LinkDirection::Outbound,
        tag => return Err(bad(format!("unknown link direction {tag}"))),
    })
}

fn put_event(buf: &mut Vec<u8>, event: &FaultEvent) {
    match *event {
        FaultEvent::Dropped {
            link,
            direction,
            seq,
        } => {
            put_u8(buf, 0);
            put_u64(buf, link);
            put_direction(buf, direction);
            put_u64(buf, seq);
        }
        FaultEvent::Duplicated {
            link,
            direction,
            seq,
        } => {
            put_u8(buf, 1);
            put_u64(buf, link);
            put_direction(buf, direction);
            put_u64(buf, seq);
        }
        FaultEvent::Reordered {
            link,
            direction,
            seq,
        } => {
            put_u8(buf, 2);
            put_u64(buf, link);
            put_direction(buf, direction);
            put_u64(buf, seq);
        }
        FaultEvent::Delayed {
            link,
            direction,
            seq,
            micros,
        } => {
            put_u8(buf, 3);
            put_u64(buf, link);
            put_direction(buf, direction);
            put_u64(buf, seq);
            put_u32(buf, micros);
        }
        FaultEvent::Crashed { link, after } => {
            put_u8(buf, 4);
            put_u64(buf, link);
            put_u64(buf, after);
        }
    }
}

fn get_event(buf: &mut &[u8]) -> Result<FaultEvent, SchemeError> {
    Ok(match get_u8(buf, "fault event tag")? {
        0 => FaultEvent::Dropped {
            link: get_u64(buf, "fault link")?,
            direction: get_direction(buf)?,
            seq: get_u64(buf, "fault seq")?,
        },
        1 => FaultEvent::Duplicated {
            link: get_u64(buf, "fault link")?,
            direction: get_direction(buf)?,
            seq: get_u64(buf, "fault seq")?,
        },
        2 => FaultEvent::Reordered {
            link: get_u64(buf, "fault link")?,
            direction: get_direction(buf)?,
            seq: get_u64(buf, "fault seq")?,
        },
        3 => FaultEvent::Delayed {
            link: get_u64(buf, "fault link")?,
            direction: get_direction(buf)?,
            seq: get_u64(buf, "fault seq")?,
            micros: get_u32(buf, "fault micros")?,
        },
        4 => FaultEvent::Crashed {
            link: get_u64(buf, "fault link")?,
            after: get_u64(buf, "fault after")?,
        },
        tag => return Err(bad(format!("unknown fault event tag {tag}"))),
    })
}

// ---------------------------------------------------------------------------
// The campaign header.
// ---------------------------------------------------------------------------

/// Everything a resumed supervisor must know about the campaign it is
/// picking up: the fleet shape, the domain, and every digest-relevant
/// knob of [`MixedFleetConfig`].
///
/// Execution-only knobs (`parallelism`, `workers`, `steal_seed`,
/// `lanes`) are deliberately absent: digests are invariant under them,
/// so a campaign journaled on a 4-worker box resumes correctly on a
/// 64-worker one — under any work-stealing order and any digest lane
/// width. The opaque
/// [`app`](Self::app) blob carries whatever the CLI (or any embedder)
/// needs to rebuild its own task/fleet objects from the journal alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignHeader {
    /// Application-owned bytes (the CLI stores its campaign flags here).
    pub app: Vec<u8>,
    /// Participant-slot count per member, in member order.
    pub member_slots: Vec<u64>,
    /// The full domain the campaign partitions.
    pub domain: Domain,
    /// Participant tree storage mode.
    pub storage: ParticipantStorage,
    /// The *digest class* of the transport the sessions multiplex over,
    /// as its canonical representative
    /// ([`TransportKind::digest_canonical`](crate::TransportKind::digest_canonical)):
    /// `Direct`, or `Brokered` for both relayed transports. `Remote` and
    /// `Brokered` share a class because the relay semantics — and hence
    /// the digests — are identical, so a campaign journaled against an
    /// in-process broker legally resumes over a real `ugc broker serve`
    /// grid (and vice versa). Socket addresses and process layout are
    /// execution-only and never reach the header.
    pub transport: FleetTransport,
    /// Whether messages ride in session envelopes.
    pub envelope: bool,
    /// The seeded chaos plan, if any.
    pub chaos: Option<FaultPlan>,
    /// Per-session inactivity deadline, if any.
    pub deadline: Option<Duration>,
    /// Reassignment-round budget.
    pub retries: u32,
}

impl CampaignHeader {
    /// The header describing a [`run_mixed_fleet`](crate::run_mixed_fleet)
    /// call: derive it from the same arguments, attach the embedder's
    /// `app` blob.
    #[must_use]
    pub fn for_campaign<H: HashFunction>(
        members: &[MemberSpec<'_, H>],
        domain: Domain,
        config: &MixedFleetConfig,
        app: Vec<u8>,
    ) -> Self {
        CampaignHeader {
            app,
            member_slots: members.iter().map(|m| m.behaviours.len() as u64).collect(),
            domain,
            storage: config.storage,
            transport: config.transport.digest_canonical(),
            envelope: config.envelope,
            chaos: config.chaos,
            deadline: config.deadline,
            retries: config.retries,
        }
    }
}

fn encode_header(header: &CampaignHeader) -> Vec<u8> {
    let mut buf = vec![TAG_HEADER];
    put_bytes(&mut buf, &header.app);
    put_u64_list(&mut buf, &header.member_slots);
    put_u64(&mut buf, header.domain.start());
    put_u64(&mut buf, header.domain.len());
    match header.storage {
        ParticipantStorage::Full => put_u8(&mut buf, 0),
        ParticipantStorage::Partial { subtree_height } => {
            put_u8(&mut buf, 1);
            put_u32(&mut buf, subtree_height);
        }
    }
    put_u8(&mut buf, header.transport.digest_class());
    put_u8(&mut buf, u8::from(header.envelope));
    match header.chaos {
        None => put_u8(&mut buf, 0),
        Some(plan) => {
            put_u8(&mut buf, 1);
            put_u64(&mut buf, plan.seed);
            put_u32(&mut buf, u32::from(plan.drop_per_1024));
            put_u32(&mut buf, u32::from(plan.dup_per_1024));
            put_u32(&mut buf, u32::from(plan.reorder_per_1024));
            put_u32(&mut buf, plan.max_delay_micros);
            put_u32(&mut buf, u32::from(plan.crash_per_1024));
        }
    }
    match header.deadline {
        None => put_u8(&mut buf, 0),
        Some(deadline) => {
            put_u8(&mut buf, 1);
            put_micros(&mut buf, deadline);
        }
    }
    put_u32(&mut buf, header.retries);
    buf
}

fn get_per_1024(buf: &mut &[u8], context: &'static str) -> Result<u16, SchemeError> {
    let v = get_u32(buf, context)?;
    u16::try_from(v).map_err(|_| bad(format!("{context}: rate {v} exceeds u16")))
}

fn decode_header(buf: &mut &[u8]) -> Result<CampaignHeader, SchemeError> {
    let app = get_bytes(buf, "header app blob")?;
    let member_slots = get_u64_list(buf, "header member slots")?;
    let start = get_u64(buf, "header domain start")?;
    let len = get_u64(buf, "header domain len")?;
    let domain = Domain::try_new(start, len)
        .map_err(|_| bad(format!("header domain {start}+{len} is invalid")))?;
    let storage = match get_u8(buf, "header storage tag")? {
        0 => ParticipantStorage::Full,
        1 => ParticipantStorage::Partial {
            subtree_height: get_u32(buf, "header subtree height")?,
        },
        tag => return Err(bad(format!("unknown storage tag {tag}"))),
    };
    let transport = match get_u8(buf, "header transport tag")? {
        0 => FleetTransport::Direct,
        1 => FleetTransport::Brokered,
        tag => return Err(bad(format!("unknown transport tag {tag}"))),
    };
    let envelope = get_u8(buf, "header envelope flag")? != 0;
    let chaos = match get_u8(buf, "header chaos flag")? {
        0 => None,
        _ => Some(FaultPlan {
            seed: get_u64(buf, "header chaos seed")?,
            drop_per_1024: get_per_1024(buf, "header drop rate")?,
            dup_per_1024: get_per_1024(buf, "header dup rate")?,
            reorder_per_1024: get_per_1024(buf, "header reorder rate")?,
            max_delay_micros: get_u32(buf, "header max delay")?,
            crash_per_1024: get_per_1024(buf, "header crash rate")?,
        }),
    };
    let deadline = match get_u8(buf, "header deadline flag")? {
        0 => None,
        _ => Some(Duration::from_micros(get_u64(buf, "header deadline")?)),
    };
    let retries = get_u32(buf, "header retries")?;
    Ok(CampaignHeader {
        app,
        member_slots,
        domain,
        storage,
        transport,
        envelope,
        chaos,
        deadline,
        retries,
    })
}

// ---------------------------------------------------------------------------
// The record stream.
// ---------------------------------------------------------------------------

const TAG_HEADER: u8 = 1;
const TAG_ROUND_START: u8 = 2;
const TAG_SETTLED: u8 = 3;
const TAG_MEMBER_STATE: u8 = 4;
const TAG_ROUND_END: u8 = 5;
const TAG_FINISHED: u8 = 6;

/// One decoded campaign record (see the module-level table).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Record {
    Header(CampaignHeader),
    RoundStart {
        round: u32,
        roster: Vec<u64>,
    },
    Settled {
        roster_index: u64,
        outcome: Result<SessionOutcome, SchemeError>,
        link: LinkStats,
    },
    MemberState {
        member: u64,
        sup_delta: CostReport,
        part_delta: CostReport,
        part_results: Vec<Result<bool, SchemeError>>,
    },
    RoundEnd {
        round: u32,
        events: Vec<FaultEvent>,
    },
    Finished {
        digest: String,
    },
}

fn encode_round_start(round: u32, roster: &[usize]) -> Vec<u8> {
    let mut buf = vec![TAG_ROUND_START];
    put_u32(&mut buf, round);
    let roster: Vec<u64> = roster.iter().map(|&i| i as u64).collect();
    put_u64_list(&mut buf, &roster);
    buf
}

fn encode_settled(roster_index: usize, result: &SessionResult) -> Vec<u8> {
    let mut buf = vec![TAG_SETTLED];
    put_u64(&mut buf, roster_index as u64);
    put_session_result(&mut buf, &result.outcome);
    put_link(&mut buf, &result.link);
    buf
}

fn encode_member_state(
    member: usize,
    sup_delta: &CostReport,
    part_delta: &CostReport,
    part_results: &[Result<bool, SchemeError>],
) -> Vec<u8> {
    let mut buf = vec![TAG_MEMBER_STATE];
    put_u64(&mut buf, member as u64);
    put_report(&mut buf, sup_delta);
    put_report(&mut buf, part_delta);
    put_usize(&mut buf, part_results.len());
    for result in part_results {
        put_part_result(&mut buf, result);
    }
    buf
}

fn encode_round_end(round: u32, events: &[FaultEvent]) -> Vec<u8> {
    let mut buf = vec![TAG_ROUND_END];
    put_u32(&mut buf, round);
    put_usize(&mut buf, events.len());
    for event in events {
        put_event(&mut buf, event);
    }
    buf
}

fn encode_finished(digest: &str) -> Vec<u8> {
    let mut buf = vec![TAG_FINISHED];
    put_str(&mut buf, digest);
    buf
}

fn decode_record(payload: &[u8]) -> Result<Record, SchemeError> {
    let mut buf = payload;
    let tag = get_u8(&mut buf, "record tag")?;
    let record = match tag {
        TAG_HEADER => Record::Header(decode_header(&mut buf)?),
        TAG_ROUND_START => Record::RoundStart {
            round: get_u32(&mut buf, "round number")?,
            roster: get_u64_list(&mut buf, "round roster")?,
        },
        TAG_SETTLED => Record::Settled {
            roster_index: get_u64(&mut buf, "settled roster index")?,
            outcome: get_session_result(&mut buf)?,
            link: get_link(&mut buf)?,
        },
        TAG_MEMBER_STATE => {
            let member = get_u64(&mut buf, "member index")?;
            let sup_delta = get_report(&mut buf)?;
            let part_delta = get_report(&mut buf)?;
            let count = get_usize(&mut buf, "participant result count")?;
            let mut part_results = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                part_results.push(get_part_result(&mut buf)?);
            }
            Record::MemberState {
                member,
                sup_delta,
                part_delta,
                part_results,
            }
        }
        TAG_ROUND_END => {
            let round = get_u32(&mut buf, "round number")?;
            let count = get_usize(&mut buf, "fault event count")?;
            let mut events = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                events.push(get_event(&mut buf)?);
            }
            Record::RoundEnd { round, events }
        }
        TAG_FINISHED => Record::Finished {
            digest: get_string(&mut buf, "finish digest")?,
        },
        tag => return Err(bad(format!("unknown record tag {tag}"))),
    };
    if !buf.is_empty() {
        return Err(bad(format!(
            "record tag {tag} left {} undecoded trailing bytes",
            buf.len()
        )));
    }
    Ok(record)
}

// ---------------------------------------------------------------------------
// The recorder: journal-before-effect hooks for engine and orchestrator.
// ---------------------------------------------------------------------------

/// The write side of a durable campaign, shared between the orchestrator
/// loop and the [`SessionEngine`](crate::engine::SessionEngine).
///
/// Append failures (I/O, or an injected [`CrashPlan`] kill point) never
/// panic mid-round: the first failure is latched, subsequent appends are
/// no-ops, and the orchestrator checks [`failure`](Self::failure) at the
/// next round boundary — which is exactly the crash semantics the resume
/// path is built for.
pub struct CampaignRecorder {
    inner: Mutex<RecorderInner>,
}

struct RecorderInner {
    /// `None` when replaying a sealed journal: the campaign is read-only.
    writer: Option<JournalWriter>,
    failure: Option<String>,
}

impl CampaignRecorder {
    fn with_writer(writer: Option<JournalWriter>) -> Self {
        CampaignRecorder {
            inner: Mutex::new(RecorderInner {
                writer,
                failure: None,
            }),
        }
    }

    fn append(&self, payload: &[u8]) {
        let mut inner = self.inner.lock().expect("recorder lock poisoned");
        if inner.failure.is_some() {
            return;
        }
        let Some(writer) = inner.writer.as_mut() else {
            return;
        };
        if let Err(e) = writer.append(payload) {
            inner.failure = Some(e.to_string());
        }
    }

    /// Journals the start of reassignment round `round` over `roster`.
    pub(crate) fn round_start(&self, round: u32, roster: &[usize]) {
        self.append(&encode_round_start(round, roster));
    }

    /// Journals one settled session (called by the engine, in
    /// registration == roster order).
    pub(crate) fn settled(&self, roster_index: usize, result: &SessionResult) {
        self.append(&encode_settled(roster_index, result));
    }

    /// Journals one member's per-round ledger deltas and participant
    /// results.
    pub(crate) fn member_state(
        &self,
        member: usize,
        sup_delta: &CostReport,
        part_delta: &CostReport,
        part_results: &[Result<bool, SchemeError>],
    ) {
        self.append(&encode_member_state(
            member,
            sup_delta,
            part_delta,
            part_results,
        ));
    }

    /// Journals the round's commit marker with its sorted fault events.
    pub(crate) fn round_end(&self, round: u32, events: &[FaultEvent]) {
        self.append(&encode_round_end(round, events));
    }

    /// Journals the summary digest and seals the journal with the
    /// attestation record.
    ///
    /// # Errors
    ///
    /// Any latched or fresh journal failure, as
    /// [`SchemeError::Journal`].
    pub(crate) fn finish(&self, digest: &str) -> Result<(), SchemeError> {
        self.append(&encode_finished(digest));
        let mut inner = self.inner.lock().expect("recorder lock poisoned");
        if inner.failure.is_none() {
            if let Some(writer) = inner.writer.as_mut() {
                if let Err(e) = writer.seal() {
                    inner.failure = Some(e.to_string());
                }
            }
        }
        match &inner.failure {
            Some(reason) => Err(SchemeError::Journal {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    /// The latched failure, if any append has failed.
    pub(crate) fn failure(&self) -> Option<String> {
        self.inner
            .lock()
            .expect("recorder lock poisoned")
            .failure
            .clone()
    }
}

// ---------------------------------------------------------------------------
// Replay and resume.
// ---------------------------------------------------------------------------

/// One member's journaled per-round effects, staged while the round's
/// records are scanned and applied only once its commit marker is seen:
/// `(member, supervisor delta, participant delta, participant verdicts)`.
type StagedMemberState = (
    usize,
    CostReport,
    CostReport,
    Vec<Result<bool, SchemeError>>,
);

/// Orchestrator state reconstructed from the journal's committed rounds:
/// the campaign loop starts from here instead of from scratch.
pub(crate) struct ReplayState {
    pub(crate) attempts: Vec<u32>,
    pub(crate) finals: Vec<Option<SessionResult>>,
    pub(crate) part_outcomes: Vec<Vec<Result<bool, SchemeError>>>,
    pub(crate) sup_deltas: Vec<CostReport>,
    pub(crate) part_deltas: Vec<CostReport>,
    pub(crate) fault_events: Vec<FaultEvent>,
    pub(crate) total_sessions: u64,
    pub(crate) total_bytes: u64,
    pub(crate) next_round: u32,
}

impl ReplayState {
    fn empty(members: usize) -> Self {
        ReplayState {
            attempts: vec![0; members],
            finals: (0..members).map(|_| None).collect(),
            part_outcomes: vec![Vec::new(); members],
            sup_deltas: vec![CostReport::default(); members],
            part_deltas: vec![CostReport::default(); members],
            fault_events: Vec::new(),
            total_sessions: 0,
            total_bytes: 0,
            next_round: 0,
        }
    }
}

/// Field-wise sum used when replaying per-round ledger deltas.
fn add_report(total: &mut CostReport, delta: &CostReport) {
    total.f_evals += delta.f_evals;
    total.hash_ops += delta.hash_ops;
    total.hash_wall_ops += delta.hash_wall_ops;
    total.g_evals += delta.g_evals;
    total.verify_ops += delta.verify_ops;
}

/// Field-wise difference between two ledger snapshots (counters are
/// monotonic, so this never underflows).
pub(crate) fn report_delta(now: &CostReport, before: &CostReport) -> CostReport {
    CostReport {
        f_evals: now.f_evals - before.f_evals,
        hash_ops: now.hash_ops - before.hash_ops,
        hash_wall_ops: now.hash_wall_ops - before.hash_wall_ops,
        g_evals: now.g_evals - before.g_evals,
        verify_ops: now.verify_ops - before.verify_ops,
    }
}

/// Charges a replayed delta into a fresh ledger.
pub(crate) fn charge_report(ledger: &CostLedger, report: &CostReport) {
    ledger.charge_f(report.f_evals);
    ledger.charge_hash_parallel(report.hash_ops, report.hash_wall_ops);
    ledger.charge_g(report.g_evals);
    ledger.charge_verify(report.verify_ops);
}

/// What [`DurableCampaign::resume`] found in the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeReport {
    /// Committed rounds replayed into supervisor state.
    pub rounds_replayed: u32,
    /// Journal records kept (header + committed rounds).
    pub records_kept: u64,
    /// Intact records dropped because their round never committed.
    pub records_dropped: u64,
    /// The torn-tail warning, if the file ended mid-record.
    pub torn: Option<String>,
    /// Whether the journal was already sealed (the campaign finished).
    pub sealed: bool,
    /// The journaled summary digest, when the campaign had finished.
    pub finished_digest: Option<String>,
}

/// One crash-durable campaign: a write-ahead journal plus the replayed
/// state of whatever a previous (killed) run already committed.
///
/// Create one with [`create`](Self::create) for a fresh campaign or
/// [`resume`](Self::resume) to pick up a killed one, then pass it to
/// [`run_durable_fleet`](crate::run_durable_fleet).
pub struct DurableCampaign {
    recorder: CampaignRecorder,
    header: CampaignHeader,
    replay: Option<ReplayState>,
}

impl std::fmt::Debug for DurableCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableCampaign")
            .field("header", &self.header)
            .field("replayed", &self.replay.is_some())
            .finish_non_exhaustive()
    }
}

impl DurableCampaign {
    /// Starts a fresh journaled campaign: writes the header record, then
    /// arms `crash` — so "kill at record `n`" counts campaign records,
    /// and the header (which `--resume` needs) is always durable.
    ///
    /// # Errors
    ///
    /// Journal I/O failures, as [`SchemeError::Journal`].
    pub fn create(
        path: &Path,
        header: CampaignHeader,
        crash: CrashPlan,
    ) -> Result<Self, SchemeError> {
        let mut writer = JournalWriter::create(path).map_err(|e| jerr(&e))?;
        writer
            .append(&encode_header(&header))
            .map_err(|e| jerr(&e))?;
        writer.arm(crash);
        Ok(DurableCampaign {
            recorder: CampaignRecorder::with_writer(Some(writer)),
            header,
            replay: None,
        })
    }

    /// Resumes a killed campaign from its journal: scans the file,
    /// truncates the torn tail and any uncommitted round, replays every
    /// committed round into the internal replay state, and re-opens the journal
    /// for appending (arming `crash` for the continuation). A sealed
    /// journal resumes read-only: the campaign re-derives its summary
    /// without writing anything.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Journal`] when the file is not a journal, has no
    /// header record, or contains records this build cannot decode.
    pub fn resume(path: &Path, crash: CrashPlan) -> Result<(Self, ResumeReport), SchemeError> {
        let journal = read_journal(path).map_err(|e| jerr(&e))?;
        let torn = match &journal.tail {
            TailStatus::Clean => None,
            TailStatus::Torn { offset, reason } => {
                Some(format!("torn tail at byte {offset}: {reason}"))
            }
        };
        let mut decoded = Vec::with_capacity(journal.records.len());
        for (index, raw) in journal.records.iter().enumerate() {
            decoded.push(
                decode_record(&raw.payload)
                    .map_err(|e| bad(format!("journal record {index} is undecodable: {e}")))?,
            );
        }
        let mut records = decoded.into_iter();
        let Some(Record::Header(header)) = records.next() else {
            return Err(bad(
                "journal has no campaign header record (crashed before the campaign began, or not a campaign journal)"
                    .to_string(),
            ));
        };
        let members = header.member_slots.len();
        let mut state = ReplayState::empty(members);
        let mut rounds_replayed = 0u32;
        // Records kept on resume: the header, plus everything up to (and
        // including) the last committed RoundEnd. A trailing uncommitted
        // round — or an unsealed Finished record — is truncated and re-run.
        let mut keep: u64 = 1;
        let mut current: Option<(u32, Vec<usize>)> = None;
        let mut finished_digest: Option<String> = None;
        // Staged, not-yet-committed effects of the round being scanned.
        let mut staged_settled: Vec<(usize, Result<SessionOutcome, SchemeError>, LinkStats)> =
            Vec::new();
        let mut staged_states: Vec<StagedMemberState> = Vec::new();
        for (offset, record) in records.enumerate() {
            let index = offset + 1; // absolute record index (0 = header)
            match record {
                Record::Header(_) => {
                    return Err(bad(format!("duplicate header at record {index}")));
                }
                Record::RoundStart { round, roster } => {
                    if current.is_some() {
                        return Err(bad(format!(
                            "record {index}: round {round} started before the previous round ended"
                        )));
                    }
                    let mut members_in_round = Vec::with_capacity(roster.len());
                    for raw in roster {
                        let member = usize::try_from(raw)
                            .ok()
                            .filter(|&m| m < members)
                            .ok_or_else(|| {
                                bad(format!("record {index}: roster member {raw} out of range"))
                            })?;
                        members_in_round.push(member);
                    }
                    current = Some((round, members_in_round));
                    staged_settled.clear();
                    staged_states.clear();
                }
                Record::Settled {
                    roster_index,
                    outcome,
                    link,
                } => {
                    let Some((_, roster)) = &current else {
                        return Err(bad(format!("record {index}: settled outside a round")));
                    };
                    let slot = usize::try_from(roster_index)
                        .ok()
                        .filter(|&s| s < roster.len())
                        .ok_or_else(|| {
                            bad(format!(
                                "record {index}: roster index {roster_index} out of range"
                            ))
                        })?;
                    staged_settled.push((roster[slot], outcome, link));
                }
                Record::MemberState {
                    member,
                    sup_delta,
                    part_delta,
                    part_results,
                } => {
                    if current.is_none() {
                        return Err(bad(format!("record {index}: member state outside a round")));
                    }
                    let member = usize::try_from(member)
                        .ok()
                        .filter(|&m| m < members)
                        .ok_or_else(|| {
                            bad(format!("record {index}: member {member} out of range"))
                        })?;
                    staged_states.push((member, sup_delta, part_delta, part_results));
                }
                Record::RoundEnd { round, events } => {
                    let Some((started, roster)) = current.take() else {
                        return Err(bad(format!("record {index}: round end outside a round")));
                    };
                    if started != round {
                        return Err(bad(format!(
                            "record {index}: round end {round} does not match round start {started}"
                        )));
                    }
                    // Commit: apply the staged round exactly as the live
                    // loop would have.
                    for &member in &roster {
                        state.attempts[member] += 1;
                        state.part_outcomes[member].clear();
                    }
                    state.total_sessions += roster.len() as u64;
                    for (member, outcome, link) in staged_settled.drain(..) {
                        // Mirrors the live loop: failed attempts are
                        // excluded from the byte total (their truncated
                        // traffic is a pump-timing race, not replayable
                        // state), so a resumed campaign reproduces the
                        // uninterrupted run's digest exactly.
                        if outcome.is_ok() {
                            state.total_bytes += link.bytes_sent + link.bytes_received;
                        }
                        state.finals[member] = Some(SessionResult { outcome, link });
                    }
                    for (member, sup_delta, part_delta, part_results) in staged_states.drain(..) {
                        add_report(&mut state.sup_deltas[member], &sup_delta);
                        add_report(&mut state.part_deltas[member], &part_delta);
                        state.part_outcomes[member] = part_results;
                    }
                    state.fault_events.extend(events);
                    state.next_round = round + 1;
                    rounds_replayed += 1;
                    keep = index as u64 + 1;
                }
                Record::Finished { digest } => {
                    finished_digest = Some(digest);
                }
            }
        }
        let sealed = journal.seal.is_some();
        let total = journal.records.len() as u64;
        let (writer, records_kept, records_dropped) = if sealed {
            // A finished campaign: nothing to write, nothing to truncate.
            (None, total, 0)
        } else {
            let mut writer = JournalWriter::resume(path, keep).map_err(|e| jerr(&e))?;
            writer.arm(crash);
            (Some(writer), keep, total - keep)
        };
        let report = ResumeReport {
            rounds_replayed,
            records_kept,
            records_dropped,
            torn,
            sealed,
            finished_digest: if sealed { finished_digest } else { None },
        };
        Ok((
            DurableCampaign {
                recorder: CampaignRecorder::with_writer(writer),
                header,
                replay: Some(state),
            },
            report,
        ))
    }

    /// The campaign header (from [`create`](Self::create), or as decoded
    /// from the journal on resume).
    #[must_use]
    pub fn header(&self) -> &CampaignHeader {
        &self.header
    }

    /// The recorder the orchestrator and engine write through.
    pub(crate) fn recorder(&self) -> &CampaignRecorder {
        &self.recorder
    }

    /// Takes the replayed state (present only after a resume, and only
    /// once).
    pub(crate) fn take_replay(&mut self) -> Option<ReplayState> {
        self.replay.take()
    }
}

/// The canonical digest of a [`FleetSummary`]: SHA-256 (hex) over every
/// schedule-invariant field — verdicts, attempts, shares, byte counts,
/// both cost ledgers, session/byte totals and the sorted fault log.
/// Wall-clock time is excluded. Two runs of the same seed — including a
/// killed-and-resumed run — produce the same digest at any worker count.
#[must_use]
pub fn summary_digest(summary: &FleetSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for m in &summary.members {
        let _ = writeln!(
            out,
            "member {} share {} accepted {} attempts {} verdict {:?} \
             link(tx {} rx {}) sup {:?} part {:?}",
            m.participant,
            m.share,
            m.outcome.accepted,
            m.attempts,
            m.outcome.verdict,
            m.outcome.supervisor_link.bytes_sent,
            m.outcome.supervisor_link.bytes_received,
            m.outcome.supervisor_costs,
            m.outcome.participant_costs,
        );
    }
    let _ = writeln!(
        out,
        "sessions {} bytes {}",
        summary.throughput.sessions, summary.throughput.bytes
    );
    let _ = writeln!(out, "faults {:?}", summary.fault_events);
    ugc_hash::hex::encode(&Sha256::digest(out.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "ugc-core-journal-{}-{tag}-{n}.wal",
            std::process::id()
        ))
    }

    fn sample_header() -> CampaignHeader {
        CampaignHeader {
            app: vec![9, 8, 7],
            member_slots: vec![1, 1, 2],
            domain: Domain::new(10, 300),
            storage: ParticipantStorage::Partial { subtree_height: 3 },
            transport: FleetTransport::Brokered,
            envelope: true,
            chaos: Some(FaultPlan {
                seed: 42,
                drop_per_1024: 8,
                dup_per_1024: 4,
                reorder_per_1024: 2,
                max_delay_micros: 150,
                crash_per_1024: 1,
            }),
            deadline: Some(Duration::from_millis(250)),
            retries: 5,
        }
    }

    #[test]
    fn header_round_trips() {
        for header in [
            sample_header(),
            CampaignHeader {
                app: Vec::new(),
                member_slots: vec![1],
                domain: Domain::new(0, 8),
                storage: ParticipantStorage::Full,
                transport: FleetTransport::Direct,
                envelope: false,
                chaos: None,
                deadline: None,
                retries: 0,
            },
        ] {
            let encoded = encode_header(&header);
            let Record::Header(decoded) = decode_record(&encoded).unwrap() else {
                panic!("expected a header record");
            };
            assert_eq!(decoded, header);
        }
    }

    #[test]
    fn header_transport_is_digest_class_not_backend_identity() {
        use crate::orchestrator::FleetScheme;
        use ugc_grid::HonestWorker;
        let scheme = FleetScheme::Naive { samples: 4 }.instantiate::<Sha256>(1);
        let behaviour = HonestWorker;
        let members = [MemberSpec::<'_, Sha256> {
            scheme: scheme.as_ref(),
            behaviours: vec![&behaviour],
        }];
        let domain = Domain::new(0, 64);
        let header = |transport| {
            CampaignHeader::for_campaign(
                &members,
                domain,
                &MixedFleetConfig {
                    transport,
                    ..MixedFleetConfig::default()
                },
                vec![1],
            )
        };
        // Brokered and Remote share a digest class (identical relay
        // semantics → identical digests), so their headers are equal and
        // --resume across that backend change is legal...
        assert_eq!(
            header(FleetTransport::Brokered),
            header(FleetTransport::Remote)
        );
        assert_eq!(
            header(FleetTransport::Remote).transport,
            FleetTransport::Brokered
        );
        // ...while Direct is a distinct class, so that resume is refused.
        assert_ne!(
            header(FleetTransport::Direct),
            header(FleetTransport::Remote)
        );
    }

    #[test]
    fn round_records_round_trip() {
        let start = encode_round_start(3, &[0, 2, 5]);
        assert_eq!(
            decode_record(&start).unwrap(),
            Record::RoundStart {
                round: 3,
                roster: vec![0, 2, 5]
            }
        );

        let result = SessionResult {
            outcome: Ok(SessionOutcome {
                verdict: Verdict::CommitmentMismatch { sample: 17 },
                reports: vec![ScreenReport {
                    input: 99,
                    payload: vec![1, 2, 3],
                }],
            }),
            link: LinkStats {
                bytes_sent: 10,
                bytes_received: 20,
                messages_sent: 3,
                messages_received: 4,
            },
        };
        let settled = encode_settled(1, &result);
        let Record::Settled {
            roster_index,
            outcome,
            link,
        } = decode_record(&settled).unwrap()
        else {
            panic!("expected a settled record");
        };
        assert_eq!(roster_index, 1);
        assert_eq!(
            outcome.unwrap().verdict,
            Verdict::CommitmentMismatch { sample: 17 }
        );
        assert_eq!(link, result.link);

        let sup = CostReport {
            f_evals: 1,
            hash_ops: 2,
            hash_wall_ops: 2,
            g_evals: 3,
            verify_ops: 4,
        };
        let results = vec![Ok(true), Err(SchemeError::TimedOut)];
        let member_state = encode_member_state(2, &sup, &CostReport::default(), &results);
        let Record::MemberState {
            member,
            sup_delta,
            part_results,
            ..
        } = decode_record(&member_state).unwrap()
        else {
            panic!("expected a member state record");
        };
        assert_eq!(member, 2);
        assert_eq!(sup_delta, sup);
        assert_eq!(part_results, results);

        let events = vec![
            FaultEvent::Dropped {
                link: 7,
                direction: LinkDirection::Inbound,
                seq: 3,
            },
            FaultEvent::Delayed {
                link: 8,
                direction: LinkDirection::Outbound,
                seq: 5,
                micros: 99,
            },
            FaultEvent::Crashed { link: 9, after: 2 },
        ];
        let end = encode_round_end(4, &events);
        assert_eq!(
            decode_record(&end).unwrap(),
            Record::RoundEnd { round: 4, events }
        );

        let finished = encode_finished("abc123");
        assert_eq!(
            decode_record(&finished).unwrap(),
            Record::Finished {
                digest: "abc123".into()
            }
        );
    }

    #[test]
    fn error_variants_round_trip_through_settled_records() {
        let errors = vec![
            SchemeError::Grid(GridError::UnexpectedEof { context: "frame" }),
            SchemeError::Grid(GridError::UnknownTag { tag: 200 }),
            SchemeError::Grid(GridError::TrailingBytes { remaining: 5 }),
            SchemeError::Grid(GridError::LengthOverflow { declared: 1 << 40 }),
            SchemeError::Grid(GridError::Disconnected),
            SchemeError::Merkle(MerkleError::MixedLeafWidth {
                expected: 4,
                found: 8,
                index: 2,
            }),
            SchemeError::Merkle(MerkleError::ProviderMismatch { subtree_index: 3 }),
            SchemeError::UnexpectedMessage {
                expected: "Commit",
                got: "Verdict",
            },
            SchemeError::TaskMismatch {
                expected: 1,
                got: 2,
            },
            SchemeError::ProofCountMismatch {
                expected: 3,
                got: 4,
            },
            SchemeError::InvalidConfig { reason: "m = 0" },
            SchemeError::MalformedPayload { what: "root" },
            SchemeError::TimedOut,
            SchemeError::Journal {
                reason: "killed".into(),
            },
        ];
        for error in errors {
            let result = SessionResult {
                outcome: Err(error.clone()),
                link: LinkStats::default(),
            };
            let Record::Settled { outcome, .. } =
                decode_record(&encode_settled(0, &result)).unwrap()
            else {
                panic!("expected a settled record");
            };
            assert_eq!(outcome.unwrap_err(), error);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_round_start(0, &[0]);
        payload.push(0xFF);
        let err = decode_record(&payload).unwrap_err();
        assert!(matches!(err, SchemeError::Journal { .. }), "{err}");
    }

    #[test]
    fn resume_replays_committed_rounds_and_drops_uncommitted_ones() {
        let path = temp_journal("replay");
        let header = CampaignHeader {
            member_slots: vec![1, 1],
            ..sample_header()
        };
        let campaign = DurableCampaign::create(&path, header.clone(), CrashPlan::never()).unwrap();
        let rec = campaign.recorder();
        let ok = SessionResult {
            outcome: Ok(SessionOutcome {
                verdict: Verdict::Accepted,
                reports: Vec::new(),
            }),
            link: LinkStats {
                bytes_sent: 5,
                bytes_received: 7,
                messages_sent: 1,
                messages_received: 1,
            },
        };
        let failed = SessionResult {
            outcome: Err(SchemeError::TimedOut),
            link: LinkStats::default(),
        };
        // Round 0 commits: member 0 accepted, member 1 timed out.
        rec.round_start(0, &[0, 1]);
        rec.settled(0, &ok);
        rec.settled(1, &failed);
        let delta = CostReport {
            f_evals: 10,
            hash_ops: 4,
            hash_wall_ops: 2,
            g_evals: 0,
            verify_ops: 1,
        };
        rec.member_state(0, &delta, &delta, &[Ok(false)]);
        rec.member_state(1, &CostReport::default(), &CostReport::default(), &[]);
        rec.round_end(0, &[]);
        // Round 1 starts but never commits (the "crash").
        rec.round_start(1, &[1]);
        rec.settled(0, &ok);
        assert!(rec.failure().is_none());
        drop(campaign);

        let (mut resumed, report) = DurableCampaign::resume(&path, CrashPlan::never()).unwrap();
        assert_eq!(resumed.header(), &header);
        assert_eq!(report.rounds_replayed, 1);
        assert_eq!(report.records_kept, 7); // header + round 0's six records
        assert_eq!(report.records_dropped, 2); // round 1's uncommitted pair
        assert_eq!(report.torn, None);
        assert!(!report.sealed);
        let state = resumed.take_replay().unwrap();
        assert_eq!(state.attempts, vec![1, 1]);
        assert_eq!(state.next_round, 1);
        assert_eq!(state.total_sessions, 2);
        assert_eq!(state.total_bytes, 12);
        assert!(state.finals[0].as_ref().unwrap().outcome.is_ok());
        assert_eq!(
            state.finals[1]
                .as_ref()
                .unwrap()
                .outcome
                .as_ref()
                .unwrap_err(),
            &SchemeError::TimedOut
        );
        assert_eq!(state.sup_deltas[0], delta);
        assert_eq!(state.part_outcomes[0], vec![Ok(false)]);
        assert!(state.part_outcomes[1].is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_point_latches_and_resume_continues() {
        let path = temp_journal("kill");
        // Kill at the 2nd campaign record (the header is unarmed).
        let campaign = DurableCampaign::create(&path, sample_header(), CrashPlan::at(2)).unwrap();
        let rec = campaign.recorder();
        rec.round_start(0, &[0, 1, 2]);
        assert!(rec.failure().is_none());
        let ok = SessionResult {
            outcome: Ok(SessionOutcome {
                verdict: Verdict::Accepted,
                reports: Vec::new(),
            }),
            link: LinkStats::default(),
        };
        rec.settled(0, &ok);
        let failure = rec.failure().expect("the kill point must latch");
        assert!(failure.contains("kill point"), "{failure}");
        // Later appends stay latched without clobbering the first failure.
        rec.round_end(0, &[]);
        assert_eq!(rec.failure().unwrap(), failure);
        assert!(matches!(
            rec.finish("digest"),
            Err(SchemeError::Journal { .. })
        ));
        drop(campaign);

        let (_, report) = DurableCampaign::resume(&path, CrashPlan::never()).unwrap();
        assert_eq!(report.rounds_replayed, 0);
        assert_eq!(report.records_kept, 1); // just the header
        assert_eq!(report.records_dropped, 1); // the uncommitted round start
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sealed_journal_resumes_read_only() {
        let path = temp_journal("sealed");
        let campaign = DurableCampaign::create(&path, sample_header(), CrashPlan::never()).unwrap();
        let rec = campaign.recorder();
        rec.round_start(0, &[0, 1, 2]);
        rec.round_end(0, &[]);
        rec.finish("deadbeef").unwrap();
        drop(campaign);

        let (resumed, report) = DurableCampaign::resume(&path, CrashPlan::never()).unwrap();
        assert!(report.sealed);
        assert_eq!(report.finished_digest.as_deref(), Some("deadbeef"));
        assert_eq!(report.records_dropped, 0);
        // The read-only recorder swallows writes and never fails.
        resumed.recorder().round_start(9, &[0]);
        assert!(resumed.recorder().failure().is_none());
        resumed.recorder().finish("deadbeef").unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_headerless_and_malformed_journals() {
        let path = temp_journal("broken");
        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(&encode_round_start(0, &[0])).unwrap();
        drop(writer);
        let err = DurableCampaign::resume(&path, CrashPlan::never()).unwrap_err();
        assert!(matches!(err, SchemeError::Journal { .. }), "{err}");

        let mut writer = JournalWriter::create(&path).unwrap();
        writer.append(&[0xEE, 0xEE]).unwrap();
        drop(writer);
        let err = DurableCampaign::resume(&path, CrashPlan::never()).unwrap_err();
        assert!(matches!(err, SchemeError::Journal { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn report_delta_and_charge_are_inverses() {
        let ledger = CostLedger::new();
        ledger.charge_f(5);
        ledger.charge_hash_parallel(10, 4);
        let before = ledger.report();
        ledger.charge_f(3);
        ledger.charge_g(2);
        ledger.charge_verify(1);
        let delta = report_delta(&ledger.report(), &before);
        assert_eq!(delta.f_evals, 3);
        assert_eq!(delta.g_evals, 2);
        assert_eq!(delta.verify_ops, 1);
        assert_eq!(delta.hash_ops, 0);

        let replayed = CostLedger::new();
        charge_report(&replayed, &before);
        charge_report(&replayed, &delta);
        assert_eq!(replayed.report(), ledger.report());
    }
}
