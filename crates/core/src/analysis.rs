//! Every closed form in the paper's analysis, as checked functions.
//!
//! These are the formulas the Monte-Carlo experiments validate and the
//! figure-regeneration binaries plot:
//!
//! * Eq. (2): [`cheat_success_probability`] — Theorem 3; extended to
//!   unreliable grids by [`cheat_success_probability_under_churn`].
//! * Eq. (3): [`required_sample_size`] — the Fig. 2 curves.
//! * Section 3.3: [`rco`], [`rco_from_levels`] — the storage trade-off.
//! * Section 4.2: [`ni_expected_attempts`], [`ni_attack_cost`],
//!   [`min_g_cost_for_uncheatability`] — the Eq. (5) economics.
//! * Communication closed forms: [`cbs_traffic_bytes`],
//!   [`naive_traffic_bytes`] — the `O(m log n)` vs `O(n)` comparison,
//!   extrapolatable to the paper's `n = 2⁶⁴` "16 million terabytes"
//!   example.

/// Eq. (2): the probability that a participant with honesty ratio `r` and
/// guess quality `q` survives `m` uniform samples:
/// `Pr = (r + (1 − r)·q)^m`.
///
/// # Panics
///
/// Panics unless `r` and `q` are probabilities.
///
/// # Examples
///
/// ```
/// use ugc_core::analysis::cheat_success_probability;
///
/// // Half-honest, no guessing luck, 14 samples — just under 1e-4:
/// let p = cheat_success_probability(0.5, 0.0, 14);
/// assert!(p < 1e-4 && p > 1e-5);
/// // Full honesty always survives:
/// assert_eq!(cheat_success_probability(1.0, 0.0, 50), 1.0);
/// ```
#[must_use]
pub fn cheat_success_probability(r: f64, q: f64, m: u64) -> f64 {
    assert!((0.0..=1.0).contains(&r), "r must be a probability");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    (r + (1.0 - r) * q).powi(m as i32)
}

/// Probability that the supervisor catches the cheater: `1 −` Eq. (2).
#[must_use]
pub fn detection_probability(r: f64, q: f64, m: u64) -> f64 {
    1.0 - cheat_success_probability(r, q, m)
}

/// Eq. (2) under churn: the probability a cheater escapes detection when
/// each verification attempt independently crashes (participant churn,
/// message loss) with probability `c` before completing, and a crashed
/// attempt is reassigned up to `retries` times.
///
/// A cheater escapes if every attempt crashed (its work was never
/// verified — the conservative reading) or the first completed attempt
/// survived the sampling:
/// `Pr = c^(retries+1) + (1 − c^(retries+1)) · (r + (1 − r)q)^m`.
///
/// With `c = 0` this reduces to Eq. (2); as `retries → ∞` it converges
/// back to Eq. (2) for any `c < 1` — churn costs wall-clock and cycles
/// but, given enough reassignments, no detection power. This is the
/// closed form the chaos soak validates empirically.
///
/// # Panics
///
/// Panics unless `r`, `q` and `crash` are probabilities.
///
/// # Examples
///
/// ```
/// use ugc_core::analysis::{cheat_success_probability, cheat_success_probability_under_churn};
///
/// let base = cheat_success_probability(0.5, 0.0, 10);
/// // No churn: identical to Eq. (2).
/// assert_eq!(cheat_success_probability_under_churn(0.5, 0.0, 10, 0.0, 0), base);
/// // Heavy churn with no retries leaves most cheats unverified…
/// assert!(cheat_success_probability_under_churn(0.5, 0.0, 10, 0.9, 0) > 0.9);
/// // …but a few reassignments claw detection back.
/// assert!(cheat_success_probability_under_churn(0.5, 0.0, 10, 0.9, 20) < 0.2);
/// ```
#[must_use]
pub fn cheat_success_probability_under_churn(
    r: f64,
    q: f64,
    m: u64,
    crash: f64,
    retries: u32,
) -> f64 {
    assert!((0.0..=1.0).contains(&crash), "crash must be a probability");
    let never_verified = crash.powi(retries as i32 + 1);
    never_verified + (1.0 - never_verified) * cheat_success_probability(r, q, m)
}

/// Eq. (3): the smallest sample count `m` with
/// `(r + (1 − r)q)^m ≤ ε`, i.e. `m ≥ log ε / log(r + (1 − r)q)`.
///
/// Returns `None` when no finite `m` works (`r + (1 − r)q = 1`, e.g. a
/// fully honest participant, or `ε ≥ 1` making `m = 0` sufficient —
/// `Some(0)` is returned for the latter).
///
/// # Panics
///
/// Panics unless `r`, `q` are probabilities and `0 < ε`.
///
/// # Examples
///
/// The two Fig. 2 anchor points quoted in the paper's text:
///
/// ```
/// use ugc_core::analysis::required_sample_size;
///
/// // r = 0.5, q = 0.5, ε = 1e-4 → 33 samples.
/// assert_eq!(required_sample_size(1e-4, 0.5, 0.5), Some(33));
/// // r = 0.5, q ≈ 0 → 14 samples.
/// assert_eq!(required_sample_size(1e-4, 0.5, 0.0), Some(14));
/// ```
#[must_use]
pub fn required_sample_size(epsilon: f64, r: f64, q: f64) -> Option<u64> {
    assert!((0.0..=1.0).contains(&r), "r must be a probability");
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!(epsilon > 0.0 && epsilon.is_finite(), "ε must be positive");
    if epsilon >= 1.0 {
        return Some(0);
    }
    let base = r + (1.0 - r) * q;
    if base >= 1.0 {
        return None;
    }
    if base <= 0.0 {
        return Some(1);
    }
    // m = ⌈log ε / log base⌉, with a guard for floating-point edge cases.
    let mut m = (epsilon.ln() / base.ln()).ceil() as u64;
    while m > 0 && base.powi((m - 1) as i32) <= epsilon {
        m -= 1;
    }
    while base.powi(m as i32) > epsilon {
        m += 1;
    }
    Some(m)
}

/// Section 3.3: relative computation overhead `rco = 2m/S`, where `S` is
/// the paper's storage figure `2^(H−ℓ+1)` in tree nodes.
///
/// # Panics
///
/// Panics if `storage_units == 0`.
///
/// # Examples
///
/// The paper's anchor: `m = 64` samples with 4G (`2³²`) storage units give
/// `rco = 2⁻²⁵`:
///
/// ```
/// use ugc_core::analysis::rco;
///
/// assert_eq!(rco(64, 1u64 << 32), 2f64.powi(-25));
/// ```
#[must_use]
pub fn rco(m: u64, storage_units: u64) -> f64 {
    assert!(storage_units > 0, "storage must be positive");
    2.0 * m as f64 / storage_units as f64
}

/// Section 3.3 in height form: `rco = m·2^ℓ / 2^H`.
///
/// # Panics
///
/// Panics unless `ell ≤ height < 64`.
#[must_use]
pub fn rco_from_levels(m: u64, height: u32, ell: u32) -> f64 {
    assert!(ell <= height, "subtree height exceeds tree height");
    assert!(height < 64, "height out of range");
    m as f64 * 2f64.powi(ell as i32) / 2f64.powi(height as i32)
}

/// Section 4.2: expected retry-attack attempts `1 / r^m` until all `m`
/// self-derived samples land in the honest subset.
///
/// # Panics
///
/// Panics unless `0 < r ≤ 1`.
#[must_use]
pub fn ni_expected_attempts(r: f64, m: u64) -> f64 {
    assert!(r > 0.0 && r <= 1.0, "r must be in (0,1]");
    r.powi(m as i32).recip()
}

/// Section 4.2: expected attack cost `(1/r^m)·m·C_g`, in unit hashes, as
/// the paper accounts it (all `m` chain elements per attempt).
#[must_use]
pub fn ni_attack_cost(r: f64, m: u64, c_g: u64) -> f64 {
    ni_expected_attempts(r, m) * m as f64 * c_g as f64
}

/// Eq. (5) solved for `C_g`: the minimum per-evaluation cost of `g` such
/// that cheating is uneconomical, `C_g ≥ n·C_f·r^m / m`.
///
/// # Panics
///
/// Panics unless `0 < r ≤ 1` and `m > 0`.
///
/// # Examples
///
/// ```
/// use ugc_core::analysis::min_g_cost_for_uncheatability;
///
/// // n = 2^20 unit-cost evaluations, r = 0.9, m = 50:
/// let c_g = min_g_cost_for_uncheatability(0.9, 50, 1 << 20, 1);
/// // 0.9^50 ≈ 5.15e-3, so C_g ≈ 2^20 × 5.15e-3 / 50 ≈ 108.
/// assert!((100.0..120.0).contains(&c_g));
/// ```
#[must_use]
pub fn min_g_cost_for_uncheatability(r: f64, m: u64, n: u64, c_f: u64) -> f64 {
    assert!(r > 0.0 && r <= 1.0, "r must be in (0,1]");
    assert!(m > 0, "m must be positive");
    n as f64 * c_f as f64 * r.powi(m as i32) / m as f64
}

/// Whether Eq. (5) holds: `(1/r^m)·m·C_g ≥ n·C_f`.
#[must_use]
pub fn eq5_holds(r: f64, m: u64, c_g: u64, n: u64, c_f: u64) -> bool {
    ni_attack_cost(r, m, c_g) >= n as f64 * c_f as f64
}

/// Closed-form participant→supervisor payload for the naive schemes:
/// `n × leaf_width` result bytes.
#[must_use]
pub fn naive_traffic_bytes(n: u64, leaf_width: u64) -> u64 {
    n.saturating_mul(leaf_width)
}

/// Closed-form participant→supervisor payload for CBS: the commitment plus
/// `m` proofs of `f(x)`, the sibling leaf, and `H − 1` digests each.
///
/// `height` is `⌈log₂ n⌉` (via [`ugc_merkle::tree_height`]).
#[must_use]
pub fn cbs_traffic_bytes(m: u64, height: u32, leaf_width: u64, digest_len: u64) -> u64 {
    let per_proof = 2 * leaf_width + u64::from(height.saturating_sub(1)) * digest_len;
    digest_len + m.saturating_mul(per_proof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_monotone_in_m() {
        let p10 = cheat_success_probability(0.7, 0.1, 10);
        let p20 = cheat_success_probability(0.7, 0.1, 20);
        assert!(p20 < p10);
    }

    #[test]
    fn eq2_extremes() {
        assert_eq!(cheat_success_probability(1.0, 0.0, 100), 1.0);
        assert_eq!(cheat_success_probability(0.0, 1.0, 100), 1.0);
        assert_eq!(cheat_success_probability(0.0, 0.0, 1), 0.0);
        assert_eq!(cheat_success_probability(0.5, 0.0, 1), 0.5);
    }

    #[test]
    fn eq2_zero_samples_always_survive() {
        assert_eq!(cheat_success_probability(0.1, 0.0, 0), 1.0);
    }

    #[test]
    fn detection_complements_eq2() {
        for &(r, q, m) in &[(0.5, 0.0, 10u64), (0.9, 0.5, 33), (0.2, 0.1, 5)] {
            let sum = cheat_success_probability(r, q, m) + detection_probability(r, q, m);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn eq3_paper_anchor_points() {
        // The two numbers quoted in Section 3.2 of the paper.
        assert_eq!(required_sample_size(1e-4, 0.5, 0.5), Some(33));
        assert_eq!(required_sample_size(1e-4, 0.5, 0.0), Some(14));
    }

    #[test]
    fn eq3_result_is_minimal() {
        for &(r, q) in &[(0.1, 0.0), (0.5, 0.5), (0.9, 0.0), (0.8, 0.3)] {
            let m = required_sample_size(1e-4, r, q).unwrap();
            assert!(cheat_success_probability(r, q, m) <= 1e-4);
            if m > 0 {
                assert!(cheat_success_probability(r, q, m - 1) > 1e-4);
            }
        }
    }

    #[test]
    fn eq3_grows_with_honesty_ratio() {
        // A nearly-honest cheater is harder to catch (Fig. 2 shape).
        let low = required_sample_size(1e-4, 0.1, 0.0).unwrap();
        let high = required_sample_size(1e-4, 0.9, 0.0).unwrap();
        assert!(high > low);
        // And q = 0.5 needs more samples than q = 0 everywhere.
        for r10 in 1..10u32 {
            let r = f64::from(r10) / 10.0;
            assert!(
                required_sample_size(1e-4, r, 0.5).unwrap()
                    >= required_sample_size(1e-4, r, 0.0).unwrap()
            );
        }
    }

    #[test]
    fn eq3_honest_unreachable() {
        assert_eq!(required_sample_size(1e-4, 1.0, 0.0), None);
        assert_eq!(required_sample_size(1e-4, 0.5, 1.0), None);
    }

    #[test]
    fn eq3_trivial_epsilon() {
        assert_eq!(required_sample_size(1.0, 0.5, 0.0), Some(0));
    }

    #[test]
    fn eq3_zero_base() {
        assert_eq!(required_sample_size(1e-4, 0.0, 0.0), Some(1));
    }

    #[test]
    fn rco_paper_anchor() {
        assert_eq!(rco(64, 1u64 << 32), 2f64.powi(-25));
    }

    #[test]
    fn rco_level_form_agrees() {
        // S = 2^(H−ℓ+1) makes the two forms identical.
        for &(m, h, ell) in &[(16u64, 20u32, 5u32), (64, 12, 3), (50, 30, 10)] {
            let s = 1u64 << (h - ell + 1);
            assert!((rco(m, s) - rco_from_levels(m, h, ell)).abs() < 1e-15);
        }
    }

    #[test]
    fn rco_independent_of_domain_size() {
        // "regardless of how large a task is" — rco depends only on m and S.
        assert_eq!(rco(64, 1 << 20), rco(64, 1 << 20));
        assert!((rco_from_levels(64, 40, 21) - rco(64, 1 << 20)).abs() < 1e-18);
        assert!((rco_from_levels(64, 30, 11) - rco(64, 1 << 20)).abs() < 1e-18);
    }

    #[test]
    fn ni_attempts_grow_exponentially() {
        assert_eq!(ni_expected_attempts(0.5, 10), 1024.0);
        assert_eq!(ni_expected_attempts(1.0, 10), 1.0);
        assert!(ni_expected_attempts(0.5, 20) > ni_expected_attempts(0.5, 10));
    }

    #[test]
    fn eq5_crossover() {
        let (r, m, n, c_f) = (0.5, 10, 1u64 << 20, 1);
        let threshold = min_g_cost_for_uncheatability(r, m, n, c_f);
        // Just above the threshold Eq. (5) holds; just below it fails.
        assert!(eq5_holds(r, m, threshold.ceil() as u64 + 1, n, c_f));
        assert!(!eq5_holds(r, m, (threshold / 2.0) as u64, n, c_f));
    }

    #[test]
    fn traffic_closed_forms() {
        // Paper's motivating example: a 2^64 domain with 16-byte results
        // needs ~16 million terabytes for the naive upload…
        let naive = naive_traffic_bytes(u64::MAX, 16);
        // Saturates: more bytes than u64 can count…
        assert_eq!(naive, u64::MAX);
        // …while CBS with m = 50 stays in the tens of kilobytes.
        let cbs = cbs_traffic_bytes(50, 64, 16, 16);
        assert!(cbs < 100_000, "CBS traffic {cbs} bytes");
    }

    #[test]
    fn cbs_traffic_is_logarithmic() {
        let small = cbs_traffic_bytes(50, 10, 8, 32);
        let big = cbs_traffic_bytes(50, 40, 8, 32);
        // 4× the height (n from 2^10 to 2^40) must cost ≈4×, not 2^30×.
        assert!(big < 5 * small);
    }

    #[test]
    #[should_panic(expected = "r must be a probability")]
    fn eq2_rejects_bad_r() {
        let _ = cheat_success_probability(1.5, 0.0, 1);
    }

    #[test]
    fn churn_closed_form_limits() {
        let base = cheat_success_probability(0.5, 0.2, 12);
        // c = 0 is Eq. (2) exactly, at any retry budget.
        assert_eq!(
            cheat_success_probability_under_churn(0.5, 0.2, 12, 0.0, 0),
            base
        );
        assert_eq!(
            cheat_success_probability_under_churn(0.5, 0.2, 12, 0.0, 9),
            base
        );
        // c = 1 with finite retries: nothing ever gets verified.
        assert_eq!(
            cheat_success_probability_under_churn(0.5, 0.2, 12, 1.0, 3),
            1.0
        );
        // Monotone: more retries ⇒ less escape probability.
        let p0 = cheat_success_probability_under_churn(0.5, 0.2, 12, 0.3, 0);
        let p3 = cheat_success_probability_under_churn(0.5, 0.2, 12, 0.3, 3);
        let p9 = cheat_success_probability_under_churn(0.5, 0.2, 12, 0.3, 9);
        assert!(p0 > p3 && p3 > p9 && p9 >= base);
        // Convergence back to Eq. (2): churn costs cycles, not detection.
        assert!(
            (cheat_success_probability_under_churn(0.5, 0.2, 12, 0.3, 60) - base).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "crash must be a probability")]
    fn churn_rejects_bad_crash_rate() {
        let _ = cheat_success_probability_under_churn(0.5, 0.0, 1, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "storage must be positive")]
    fn rco_rejects_zero_storage() {
        let _ = rco(1, 0);
    }
}
