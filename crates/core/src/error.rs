//! Error type for protocol execution.

use core::fmt;
use ugc_grid::GridError;
use ugc_merkle::MerkleError;

/// Errors raised while executing a verification scheme.
///
/// Note the distinction from *cheating detection*: a detected cheater is a
/// successful run with a rejecting [`Verdict`](crate::Verdict), not an
/// error. Errors mean the protocol itself broke (transport failure,
/// malformed message, invalid configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// Transport or codec failure.
    Grid(GridError),
    /// Merkle-tree failure on the participant side.
    Merkle(MerkleError),
    /// The peer sent an unexpected message type.
    UnexpectedMessage {
        /// What the protocol step expected.
        expected: &'static str,
        /// A short description of what arrived.
        got: &'static str,
    },
    /// A reply referenced the wrong task.
    TaskMismatch {
        /// The task id this side is running.
        expected: u64,
        /// The task id the peer referenced.
        got: u64,
    },
    /// The participant answered with the wrong number of proofs.
    ProofCountMismatch {
        /// Number of samples challenged.
        expected: usize,
        /// Number of proofs received.
        got: usize,
    },
    /// A configuration parameter is out of range.
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// A commitment or proof carried bytes that do not form a valid digest
    /// or result for the scheme's hash/task.
    MalformedPayload {
        /// What failed to parse.
        what: &'static str,
    },
    /// The session saw no peer activity within its deadline (a dropped
    /// message, a stalled participant) and was failed rather than left to
    /// hang the engine.
    TimedOut,
    /// The campaign journal failed: an I/O error, an injected kill point,
    /// or an undecodable record on resume. Carries an owned string because
    /// the underlying cause is formatted at the crash site.
    Journal {
        /// What the journal layer reported.
        reason: String,
    },
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::Grid(e) => write!(f, "transport error: {e}"),
            SchemeError::Merkle(e) => write!(f, "merkle error: {e}"),
            SchemeError::UnexpectedMessage { expected, got } => {
                write!(f, "expected {expected} message, got {got}")
            }
            SchemeError::TaskMismatch { expected, got } => {
                write!(f, "task id mismatch: expected {expected}, got {got}")
            }
            SchemeError::ProofCountMismatch { expected, got } => {
                write!(f, "expected {expected} proofs, got {got}")
            }
            SchemeError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SchemeError::MalformedPayload { what } => write!(f, "malformed payload: {what}"),
            SchemeError::TimedOut => write!(f, "session exceeded its inactivity deadline"),
            SchemeError::Journal { reason } => write!(f, "campaign journal failed: {reason}"),
        }
    }
}

impl std::error::Error for SchemeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchemeError::Grid(e) => Some(e),
            SchemeError::Merkle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for SchemeError {
    fn from(e: GridError) -> Self {
        SchemeError::Grid(e)
    }
}

impl From<MerkleError> for SchemeError {
    fn from(e: MerkleError) -> Self {
        SchemeError::Merkle(e)
    }
}

/// Names a message variant for diagnostics.
pub(crate) fn message_kind(msg: &ugc_grid::Message) -> &'static str {
    use ugc_grid::Message;
    match msg {
        Message::Assign(_) => "Assign",
        Message::Commit { .. } => "Commit",
        Message::Challenge { .. } => "Challenge",
        Message::Proofs { .. } => "Proofs",
        Message::CommitAndProofs { .. } => "CommitAndProofs",
        Message::AllResults { .. } => "AllResults",
        Message::Reports { .. } => "Reports",
        Message::RingerChallenge { .. } => "RingerChallenge",
        Message::RingerFound { .. } => "RingerFound",
        Message::Verdict { .. } => "Verdict",
        Message::Session { .. } => "Session",
        Message::Gone { .. } => "Gone",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: SchemeError = GridError::Disconnected.into();
        assert_eq!(e, SchemeError::Grid(GridError::Disconnected));
        let e: SchemeError = MerkleError::EmptyTree.into();
        assert_eq!(e, SchemeError::Merkle(MerkleError::EmptyTree));
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            SchemeError::UnexpectedMessage {
                expected: "Commit",
                got: "Verdict"
            }
            .to_string(),
            "expected Commit message, got Verdict"
        );
        assert_eq!(
            SchemeError::TaskMismatch {
                expected: 1,
                got: 2
            }
            .to_string(),
            "task id mismatch: expected 1, got 2"
        );
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = SchemeError::Grid(GridError::Disconnected);
        assert!(e.source().is_some());
        let e = SchemeError::InvalidConfig { reason: "m = 0" };
        assert!(e.source().is_none());
    }

    #[test]
    fn message_kinds_cover_variants() {
        use ugc_grid::Message;
        assert_eq!(
            message_kind(&Message::Verdict {
                task_id: 0,
                accepted: true
            }),
            "Verdict"
        );
        assert_eq!(
            message_kind(&Message::Commit {
                task_id: 0,
                root: vec![]
            }),
            "Commit"
        );
    }
}
