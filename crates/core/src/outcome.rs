//! Common result types shared by every scheme.

use ugc_grid::{CostReport, LinkStats};
use ugc_task::ScreenReport;

/// The supervisor's accept/reject decision for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every check passed; the work is accepted.
    Accepted,
    /// The claimed `f(x)` for a sample was wrong (Step 4.1 of CBS).
    WrongResult {
        /// The offending sample index.
        sample: u64,
    },
    /// The reconstructed root `Φ(R′)` differed from the commitment
    /// (Step 4.2 of CBS) — the participant did not know `f(x)` at
    /// commitment time.
    CommitmentMismatch {
        /// The offending sample index.
        sample: u64,
    },
    /// The participant's self-derived NI-CBS samples do not match Eq. (4).
    SampleDerivationMismatch,
    /// A screened report failed the supervisor's audit.
    ReportMismatch {
        /// The input whose report failed.
        input: u64,
    },
    /// A ringer was not found, or a bogus preimage was claimed.
    RingerMissed,
    /// Replicated results disagreed (double-check scheme).
    ReplicaDisagreement {
        /// First index at which the replicas disagree.
        index: u64,
    },
}

impl Verdict {
    /// Whether the verdict accepts the participant's work.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted)
    }
}

impl core::fmt::Display for Verdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Verdict::Accepted => write!(f, "accepted"),
            Verdict::WrongResult { sample } => write!(f, "wrong f(x) at sample {sample}"),
            Verdict::CommitmentMismatch { sample } => {
                write!(f, "commitment mismatch at sample {sample}")
            }
            Verdict::SampleDerivationMismatch => write!(f, "sample derivation mismatch"),
            Verdict::ReportMismatch { input } => write!(f, "report audit failed at input {input}"),
            Verdict::RingerMissed => write!(f, "ringer missed"),
            Verdict::ReplicaDisagreement { index } => {
                write!(f, "replicas disagree at index {index}")
            }
        }
    }
}

/// How the participant stores its Merkle tree (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticipantStorage {
    /// Keep the whole tree in memory: `O(|D|)` space, `O(log n)` proofs.
    Full,
    /// Keep only the top `H − ℓ` levels; rebuild height-`ℓ` subtrees on
    /// demand, recomputing `f` for `2^ℓ` inputs per sample.
    Partial {
        /// The unsaved-subtree height `ℓ ∈ [1, H]`.
        subtree_height: u32,
    },
}

/// Everything measured in one protocol round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// The supervisor's decision.
    pub verdict: Verdict,
    /// Whether the work was accepted (convenience for `verdict`).
    pub accepted: bool,
    /// Supervisor-side computation costs.
    pub supervisor_costs: CostReport,
    /// Participant-side computation costs.
    pub participant_costs: CostReport,
    /// Supervisor-side traffic (bytes/messages, both directions).
    pub supervisor_link: LinkStats,
    /// The screened "results of interest" the supervisor ended up with.
    pub reports: Vec<ScreenReport>,
}

impl RoundOutcome {
    pub(crate) fn new(
        verdict: Verdict,
        supervisor_costs: CostReport,
        participant_costs: CostReport,
        supervisor_link: LinkStats,
        reports: Vec<ScreenReport>,
    ) -> Self {
        RoundOutcome {
            accepted: verdict.is_accepted(),
            verdict,
            supervisor_costs,
            participant_costs,
            supervisor_link,
            reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_accept_flag() {
        assert!(Verdict::Accepted.is_accepted());
        assert!(!Verdict::WrongResult { sample: 3 }.is_accepted());
        assert!(!Verdict::RingerMissed.is_accepted());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Accepted.to_string(), "accepted");
        assert_eq!(
            Verdict::CommitmentMismatch { sample: 9 }.to_string(),
            "commitment mismatch at sample 9"
        );
    }

    #[test]
    fn outcome_mirrors_verdict() {
        let o = RoundOutcome::new(
            Verdict::Accepted,
            CostReport::default(),
            CostReport::default(),
            LinkStats::default(),
            Vec::new(),
        );
        assert!(o.accepted);
        let o = RoundOutcome::new(
            Verdict::SampleDerivationMismatch,
            CostReport::default(),
            CostReport::default(),
            LinkStats::default(),
            Vec::new(),
        );
        assert!(!o.accepted);
    }
}
