//! Uncheatable grid computing: the Commitment-Based Sampling schemes of
//! Du, Jia, Mangal and Murugesan (ICDCS 2004), plus every baseline the
//! paper compares against.
//!
//! # The problem
//!
//! A supervisor assigns a participant the evaluation of `f(x)` for all
//! `x ∈ D = {x_1 … x_n}` and receives only the screened "results of
//! interest". A *semi-honest* cheater evaluates `f` on a subset `D′`
//! (honesty ratio `r = |D′|/|D|`) and guesses the rest; how does the
//! supervisor detect this efficiently?
//!
//! # The schemes
//!
//! | Module | Scheme | Communication | Detects `r < 1` with |
//! |--------|--------|---------------|----------------------|
//! | [`scheme::double_check`] | assign twice, compare | `O(n)` ×2 | certainty (if one replica honest) — but 100% wasted cycles |
//! | [`scheme::naive`] | upload all, spot-check `m` | `O(n)` | `1 − (r + (1−r)q)^m` |
//! | [`scheme::cbs`] | **CBS** (§3): Merkle commitment + sampling | `O(m log n)` | `1 − (r + (1−r)q)^m` (Theorem 3) |
//! | [`scheme::ni_cbs`] | **NI-CBS** (§4): samples derived from the root | `O(m log n)`, one round | same, minus the retry attack priced out by Eq. (5) |
//! | [`scheme::ringer`] | Golle–Mironov ringers (§1.1) | `O(1)` extra | `1 − r^d`, one-way `f` only |
//!
//! The [`analysis`] module provides every closed form in the paper
//! (Eqs. 2–5, the `rco = 2m/S` storage trade-off), and [`sampling`]
//! implements both interactive sample selection and the Eq. (4) hash-chain
//! derivation.
//!
//! # Examples
//!
//! A full interactive CBS round against a half-honest cheater:
//!
//! ```
//! use ugc_core::scheme::cbs::{run_cbs, CbsConfig};
//! use ugc_core::ParticipantStorage;
//! use ugc_grid::{CheatSelection, SemiHonestCheater};
//! use ugc_hash::Sha256;
//! use ugc_task::{workloads::PasswordSearch, Domain, ZeroGuesser};
//!
//! let task = PasswordSearch::with_hidden_password(1, 42);
//! let screener = task.match_screener();
//! let cheater = SemiHonestCheater::new(0.5, CheatSelection::Scattered, ZeroGuesser::new(7), 3);
//! let config = CbsConfig { task_id: 1, samples: 20, seed: 99, report_audit: 0 };
//! let outcome = run_cbs::<Sha256, _, _, _>(
//!     &task,
//!     &screener,
//!     Domain::new(0, 256),
//!     &cheater,
//!     ParticipantStorage::Full,
//!     &config,
//! )?;
//! assert!(!outcome.accepted, "a 50% cheater must not survive 20 samples");
//! # Ok::<(), ugc_core::SchemeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod backend;
pub mod engine;
mod error;
mod journal;
mod orchestrator;
mod outcome;
pub mod sampling;
pub mod scheme;
pub mod session;

pub use backend::{
    EngineSide, InProcessBackend, OpenRound, RemoteGridBackend, RoundSpec, SlotReport,
    TransportBackend, TransportKind,
};
pub use error::SchemeError;
pub use journal::{summary_digest, CampaignHeader, DurableCampaign, ResumeReport};
pub use orchestrator::{
    chaos_link_id, run_campaign, run_durable_fleet, run_durable_fleet_on, run_fleet,
    run_fleet_over, run_mixed_fleet, run_mixed_fleet_on, CampaignSummary, FleetConfig, FleetMember,
    FleetScheme, FleetSummary, FleetTransport, MemberSpec, MixedFleetConfig,
};
pub use outcome::{ParticipantStorage, RoundOutcome, Verdict};
pub use session::{
    ParticipantContext, ParticipantSession, SessionOutcome, SessionPoll, SupervisorContext,
    SupervisorSession, VerificationScheme,
};
// The thread-count knob behind every parallel path (tree builds here, the
// Monte-Carlo shards in `ugc-sim`); re-exported so scheme users need not
// depend on `ugc-merkle` directly.
pub use ugc_merkle::{LaneWidth, Parallelism};
