//! Message-driven protocol sessions: the engine-facing face of every
//! verification scheme.
//!
//! Each scheme in this crate is defined by two explicit state machines —
//! one per side of the wire — that consume and produce
//! [`Message`]s:
//!
//! ```text
//!               supervisor session            participant session
//!  start() ──▶  Assign ────────────────────▶  evaluate f, build tree
//!               AwaitCommit  ◀── Commit ────  AwaitChallenge
//!               Challenge ─────────────────▶  prove samples
//!               AwaitProofs ◀─── Proofs ────  AwaitVerdict
//!               AwaitReports ◀── Reports ───
//!               verify, Verdict ───────────▶  Done(accepted)
//!               Done(verdict, reports)
//! ```
//!
//! A session never blocks: it is handed one inbound message at a time and
//! answers with the messages to send, so hundreds of sessions — different
//! schemes, different behaviours — interleave over one transport. The
//! [`SessionEngine`](crate::engine::SessionEngine) multiplexes supervisor
//! sessions over direct links or a [`Broker`](ugc_grid::Broker); the
//! participant side is symmetric: [`step_participant`] advances one
//! session by one message without blocking (what the grid scheduler's
//! worker pool calls), while [`drive_participant`] and
//! [`drive_supervisor`] are thin blocking loops that run a single
//! session to completion over one endpoint, which is exactly what the
//! legacy `run_*`/`participant_*`/`supervisor_*` free functions now do.
//!
//! # Example: one CBS round, session by session
//!
//! ```
//! use ugc_core::scheme::cbs::CbsScheme;
//! use ugc_core::session::{
//!     drive_participant, drive_supervisor, ParticipantContext, SupervisorContext,
//!     VerificationScheme,
//! };
//! use ugc_core::{LaneWidth, ParticipantStorage, Parallelism};
//! use ugc_grid::{duplex, CostLedger, HonestWorker};
//! use ugc_hash::Sha256;
//! use ugc_task::{workloads::PasswordSearch, Domain};
//!
//! let task = PasswordSearch::with_hidden_password(1, 42);
//! let screener = task.match_screener();
//! let scheme = CbsScheme { samples: 12, seed: 7, report_audit: 0 };
//! let (sup_ep, part_ep) = duplex();
//!
//! let outcome = std::thread::scope(|scope| {
//!     scope.spawn(|| {
//!         let mut session =
//!             VerificationScheme::<Sha256>::participant_session(&scheme, ParticipantContext {
//!                 task: &task,
//!                 screener: &screener,
//!                 behaviour: &HonestWorker,
//!                 storage: ParticipantStorage::Full,
//!                 parallelism: Parallelism::serial(),
//!                 lanes: LaneWidth::default(),
//!                 ledger: CostLedger::new(),
//!             });
//!         drive_participant(&part_ep, session.as_mut())
//!     });
//!     let mut session =
//!         VerificationScheme::<Sha256>::supervisor_session(&scheme, SupervisorContext {
//!             task: &task,
//!             screener: &screener,
//!             domain: Domain::new(0, 128),
//!             task_ids: vec![1],
//!             ledger: CostLedger::new(),
//!         });
//!     drive_supervisor(&[&sup_ep], session.as_mut())
//! })?;
//! assert!(outcome.verdict.is_accepted());
//! assert_eq!(outcome.reports[0].input, 42); // the password surfaced
//! # Ok::<(), ugc_core::SchemeError>(())
//! ```

use crate::error::message_kind;
use crate::{SchemeError, Verdict};
use ugc_grid::{Backoff, CostLedger, Endpoint, GridError, GridLink, Message, WorkerBehaviour};
use ugc_hash::HashFunction;
use ugc_merkle::{LaneWidth, Parallelism};
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

use crate::ParticipantStorage;

/// What a completed supervisor session decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionOutcome {
    /// The accept/reject decision.
    pub verdict: Verdict,
    /// The screened reports received during the session.
    pub reports: Vec<ScreenReport>,
}

/// A message to send, addressed to one of the session's participant slots
/// (slot 0 for every single-participant scheme; double-check uses 0 and 1).
pub type Outbound = (usize, Message);

/// The supervisor side of one verification session, as a state machine.
///
/// The driver (engine or blocking loop) calls [`start`](Self::start) once,
/// then feeds every inbound message to [`on_message`](Self::on_message) and
/// transmits whatever comes back, until [`take_outcome`](Self::take_outcome)
/// yields the verdict. Errors are protocol failures (cheating is a verdict,
/// never an error).
pub trait SupervisorSession: Send {
    /// Messages to send when the session opens (e.g. the assignment).
    ///
    /// # Errors
    ///
    /// Invalid configuration (the session never starts).
    fn start(&mut self) -> Result<Vec<Outbound>, SchemeError>;

    /// Feeds one inbound message from participant slot `slot`; returns the
    /// messages to send in response.
    ///
    /// # Errors
    ///
    /// Unexpected message kinds, task-id mismatches, malformed payloads.
    fn on_message(&mut self, slot: usize, msg: Message) -> Result<Vec<Outbound>, SchemeError>;

    /// Whether `msg` from slot `slot` is a redundant redelivery the
    /// session neither needs nor charges — e.g. a fault-injected
    /// duplicate of an upload this session already holds. Stale mail is
    /// dropped by the drivers *before* byte accounting, so whether the
    /// duplicate lands before or after the session completes (a
    /// cross-link race for multi-peer sessions) cannot change the
    /// session's attributed traffic. The default treats nothing as
    /// stale.
    fn is_stale(&self, slot: usize, msg: &Message) -> bool {
        let _ = (slot, msg);
        false
    }

    /// Notifies the session that participant slot `slot` is gone (its
    /// link closed, or the broker NACKed its task): nothing more will
    /// ever arrive from it. Return `Ok(())` if the session can still
    /// complete without that peer — a multi-peer session whose dead slot
    /// had already delivered everything it owed must say so here, or the
    /// verdict would depend on whether the death notice raced the other
    /// slots' messages across links.
    ///
    /// # Errors
    ///
    /// The default fails the session with
    /// [`GridError::Disconnected`](ugc_grid::GridError), which is right
    /// for every single-peer session: it cannot finish without its peer.
    fn on_peer_gone(&mut self, slot: usize) -> Result<(), SchemeError> {
        let _ = slot;
        Err(SchemeError::Grid(GridError::Disconnected))
    }

    /// The verdict and collected reports, once the session has finished.
    /// Returns `None` while the session still awaits messages.
    fn take_outcome(&mut self) -> Option<SessionOutcome>;
}

/// The participant side of one verification session, as a state machine.
pub trait ParticipantSession: Send {
    /// Feeds one inbound message; returns the replies to send.
    ///
    /// # Errors
    ///
    /// Unexpected message kinds, task-id mismatches, Merkle failures.
    fn on_message(&mut self, msg: Message) -> Result<Vec<Message>, SchemeError>;

    /// `Some(accepted)` once the supervisor's verdict has arrived.
    fn finished(&self) -> Option<bool>;
}

/// Everything a supervisor session needs from its environment.
pub struct SupervisorContext<'a> {
    /// The compute task being verified.
    pub task: &'a dyn ComputeTask,
    /// The screener that defines "results of interest".
    pub screener: &'a dyn Screener,
    /// The sub-domain assigned to this session's participant(s).
    pub domain: Domain,
    /// One wire task id per participant slot
    /// ([`VerificationScheme::participant_slots`] entries).
    pub task_ids: Vec<u64>,
    /// Supervisor-side cost accounting (clones share counters).
    pub ledger: CostLedger,
}

/// Everything a participant session needs from its environment.
pub struct ParticipantContext<'a> {
    /// The compute task being evaluated.
    pub task: &'a dyn ComputeTask,
    /// The screener that defines "results of interest".
    pub screener: &'a dyn Screener,
    /// How this participant actually behaves (honest, cheating, malicious).
    pub behaviour: &'a dyn WorkerBehaviour,
    /// Merkle-tree storage mode (Section 3.3).
    pub storage: ParticipantStorage,
    /// Tree-build parallelism (bit-identical results at any setting).
    pub parallelism: Parallelism,
    /// Message-parallel digest lane width for tree builds and sample
    /// hashing (bit-identical results at any setting).
    pub lanes: LaneWidth,
    /// Participant-side cost accounting (clones share counters).
    pub ledger: CostLedger,
}

/// One verification scheme, defined by the pair of session state machines
/// it installs on each side of the grid transport.
///
/// All five schemes of the evaluation — naive sampling, double-check,
/// ringers, CBS and NI-CBS — implement this trait, so one
/// [`SessionEngine`](crate::engine::SessionEngine) event loop drives any
/// mix of them over any transport, and the legacy blocking entry points
/// (`run_cbs`, `run_naive`, …) are thin wrappers that drive a single
/// session pair to completion.
pub trait VerificationScheme<H: HashFunction>: Send + Sync {
    /// Scheme name for reports and tables.
    fn name(&self) -> &'static str;

    /// How many participants one session of this scheme occupies
    /// (2 for double-check, 1 for everything else).
    fn participant_slots(&self) -> usize {
        1
    }

    /// Builds the supervisor-side state machine for one session.
    fn supervisor_session<'a>(
        &'a self,
        ctx: SupervisorContext<'a>,
    ) -> Box<dyn SupervisorSession + 'a>;

    /// Builds the participant-side state machine for one session slot.
    fn participant_session<'a>(
        &'a self,
        ctx: ParticipantContext<'a>,
    ) -> Box<dyn ParticipantSession + 'a>;
}

/// Fails with the uniform "expected X, got Y" error the schemes raise on
/// out-of-order messages.
pub(crate) fn unexpected<T>(expected: &'static str, got: &Message) -> Result<T, SchemeError> {
    Err(SchemeError::UnexpectedMessage {
        expected,
        got: message_kind(got),
    })
}

/// What one non-blocking [`step_participant`] call accomplished.
///
/// This is the participant-side mirror of the engine's event-loop
/// verdicts: `Progress` means "poll me again soon", `Idle` means "park
/// me until traffic may have arrived", `Complete` carries the session's
/// final result. The grid scheduler
/// ([`GridScheduler`](ugc_grid::runtime::GridScheduler)) maps these
/// one-to-one onto its
/// [`TaskPoll`](ugc_grid::runtime::TaskPoll) run-queue verdicts.
#[derive(Debug)]
pub enum SessionPoll {
    /// An inbound message was consumed (and any replies sent); the
    /// session may have more mail queued, so poll again soon.
    Progress,
    /// No inbound message is waiting; nothing to do until the peer
    /// speaks.
    Idle,
    /// The session ended: `Ok(accepted)` once the verdict arrived, or
    /// the transport/protocol error that killed it (including this
    /// participant's own injected crash).
    Complete(Result<bool, SchemeError>),
}

/// Feeds one raw inbound message to a participant session and sends the
/// replies, handling [`Message::Session`] envelopes transparently: an
/// enveloped message has its payload fed to the session and the replies
/// are wrapped under the same session id, so enveloped and bare
/// transports drive the identical state machine.
fn pump_participant<L: GridLink + ?Sized>(
    endpoint: &L,
    session: &mut (dyn ParticipantSession + '_),
    raw: Message,
) -> Result<(), SchemeError> {
    let (envelope, msg) = raw.into_payload();
    let mut failure: Option<SchemeError> = None;
    for out in session.on_message(msg)? {
        let out = match envelope {
            Some(id) => Message::in_session(id, out),
            None => out,
        };
        // Attempt the whole burst even once a send has failed: each
        // outbound message consumes a fault-schedule sequence number
        // (logged before the wire is touched), so the replay log must
        // not depend on *when* the peer disappeared — that is a
        // wall-clock race against the round's teardown, and it would
        // otherwise make the fault log vary with worker count. The
        // first error still fails the session.
        if let Err(e) = endpoint.send(&out) {
            failure.get_or_insert(e.into());
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Advances a participant session by (at most) one inbound message,
/// without ever blocking — the poll-driven face of the participant side,
/// scheduled by the grid runtime's worker pool exactly as the
/// [`SessionEngine`](crate::engine::SessionEngine) multiplexes the
/// supervisor side.
///
/// Each call either consumes one queued message (sending any replies and
/// returning [`SessionPoll::Progress`]), finds the queue empty
/// ([`SessionPoll::Idle`] — park the session), or finishes
/// ([`SessionPoll::Complete`] with the verdict or the error). The
/// blocking [`drive_participant`] loop and this function drive the
/// identical state machine over the identical link-operation sequence,
/// so fault schedules, ledgers and verdicts are bit-identical between
/// them.
pub fn step_participant<L: GridLink + ?Sized>(
    endpoint: &L,
    session: &mut (dyn ParticipantSession + '_),
) -> SessionPoll {
    if let Some(accepted) = session.finished() {
        return SessionPoll::Complete(Ok(accepted));
    }
    let raw = match endpoint.try_recv() {
        Ok(raw) => raw,
        Err(GridError::Empty) => return SessionPoll::Idle,
        Err(e) => return SessionPoll::Complete(Err(e.into())),
    };
    match pump_participant(endpoint, session, raw) {
        Ok(()) => match session.finished() {
            Some(accepted) => SessionPoll::Complete(Ok(accepted)),
            None => SessionPoll::Progress,
        },
        Err(e) => SessionPoll::Complete(Err(e)),
    }
}

/// Advances a participant session by up to `budget` inbound messages in
/// one call — the batched face of [`step_participant`], so one scheduler
/// dispatch (and one trip through the link's lock and fault decorator
/// per message, but only one run-queue round trip) drains a whole burst
/// of queued mail instead of bouncing the task through the run queue
/// once per message.
///
/// The batch is a plain loop over [`step_participant`]: each message is
/// received, fed to the session and answered in exactly the order the
/// single-step driver would use, so fault-schedule draws, ledgers and
/// verdicts are bit-identical to `budget == 1` (property-tested in this
/// module and in `tests/scheduler_equivalence.rs`). The call returns
/// early on [`SessionPoll::Idle`] (queue drained; `Progress` instead if
/// the batch consumed at least one message first, so the scheduler
/// re-polls before parking) or [`SessionPoll::Complete`].
///
/// # Panics
///
/// Panics if `budget` is zero — a zero-message step could neither make
/// progress nor legitimately report `Idle`.
pub fn step_participant_batch<L: GridLink + ?Sized>(
    endpoint: &L,
    session: &mut (dyn ParticipantSession + '_),
    budget: usize,
) -> SessionPoll {
    assert!(budget > 0, "batched step needs a non-zero message budget");
    for consumed in 0..budget {
        match step_participant(endpoint, session) {
            SessionPoll::Progress => {}
            SessionPoll::Idle if consumed > 0 => return SessionPoll::Progress,
            terminal => return terminal,
        }
    }
    SessionPoll::Progress
}

/// Runs a participant session to completion over a blocking link — a raw
/// [`Endpoint`] or any [`GridLink`] decorator (e.g. the fault-injecting
/// [`FaultyEndpoint`](ugc_grid::FaultyEndpoint) of the chaos runtime).
/// A thin blocking wrapper over the same message pump that powers the
/// non-blocking [`step_participant`].
///
/// Session envelopes are handled transparently: an enveloped inbound
/// message has its payload fed to the session and the replies are wrapped
/// under the same session id, so enveloped and bare transports drive the
/// identical state machine.
///
/// # Errors
///
/// Transport failures (including the peer disconnecting mid-protocol, or
/// this participant's own injected crash) and any protocol error the
/// session raises.
pub fn drive_participant<L: GridLink + ?Sized>(
    endpoint: &L,
    session: &mut (dyn ParticipantSession + '_),
) -> Result<bool, SchemeError> {
    loop {
        if let Some(accepted) = session.finished() {
            return Ok(accepted);
        }
        let raw = endpoint.recv()?;
        pump_participant(endpoint, session, raw)?;
    }
}

/// Runs a supervisor session to completion over blocking endpoints, one
/// per participant slot.
///
/// With a single endpoint the loop blocks on `recv`; with several (the
/// double-check supervisor) it polls them fairly, yielding the core while
/// all are idle.
///
/// # Errors
///
/// Transport failures and any protocol error the session raises, plus
/// [`SchemeError::InvalidConfig`] if the endpoint count does not match the
/// session's slots.
pub fn drive_supervisor(
    endpoints: &[&Endpoint],
    session: &mut (dyn SupervisorSession + '_),
) -> Result<SessionOutcome, SchemeError> {
    let send_all = |outs: Vec<Outbound>| -> Result<(), SchemeError> {
        for (slot, msg) in outs {
            let endpoint = endpoints.get(slot).ok_or(SchemeError::InvalidConfig {
                reason: "session addressed a slot with no endpoint",
            })?;
            endpoint.send(&msg)?;
        }
        Ok(())
    };
    send_all(session.start()?)?;
    loop {
        if let Some(outcome) = session.take_outcome() {
            return Ok(outcome);
        }
        let (slot, msg) = recv_any(endpoints)?;
        if session.is_stale(slot, &msg) {
            continue; // redundant redelivery: dropped, as the engine does
        }
        send_all(session.on_message(slot, msg)?)?;
    }
}

/// Receives the next message from any of the given endpoints, with its
/// slot index. Blocks on a lone endpoint; polls fairly otherwise.
fn recv_any(endpoints: &[&Endpoint]) -> Result<(usize, Message), SchemeError> {
    if let [only] = endpoints {
        return Ok((0, only.recv()?));
    }
    let mut cursor = 0usize;
    let mut backoff = Backoff::new();
    loop {
        let mut all_dead = true;
        for probe in 0..endpoints.len() {
            let idx = (cursor + probe) % endpoints.len();
            match endpoints[idx].try_recv() {
                Ok(msg) => return Ok((idx, msg)),
                Err(GridError::Empty) => all_dead = false,
                Err(GridError::Disconnected) => {}
                Err(e) => return Err(e.into()),
            }
        }
        if all_dead {
            return Err(SchemeError::Grid(GridError::Disconnected));
        }
        cursor = (cursor + 1) % endpoints.len();
        // Peers are computing; escalate from spinning to coarse sleeps
        // instead of burning a core.
        backoff.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::cbs::CbsScheme;
    use ugc_grid::{duplex, HonestWorker, LinkStats};
    use ugc_hash::Sha256;
    use ugc_task::workloads::PasswordSearch;

    /// Runs one honest CBS round with the participant advanced by
    /// `step`, returning the supervisor's outcome and the participant
    /// link's traffic counters.
    fn cbs_round_with_stepper(
        step: &dyn Fn(&Endpoint, &mut (dyn ParticipantSession + '_)) -> SessionPoll,
    ) -> (SessionOutcome, LinkStats) {
        let task = PasswordSearch::with_hidden_password(1, 42);
        let screener = task.match_screener();
        let scheme = CbsScheme {
            samples: 12,
            seed: 7,
            report_audit: 0,
        };
        let (sup_ep, part_ep) = duplex();
        std::thread::scope(|scope| {
            let supervisor = scope.spawn(|| {
                let mut session = VerificationScheme::<Sha256>::supervisor_session(
                    &scheme,
                    SupervisorContext {
                        task: &task,
                        screener: &screener,
                        domain: ugc_task::Domain::new(0, 128),
                        task_ids: vec![1],
                        ledger: CostLedger::new(),
                    },
                );
                drive_supervisor(&[&sup_ep], session.as_mut()).unwrap()
            });
            let mut session = VerificationScheme::<Sha256>::participant_session(
                &scheme,
                ParticipantContext {
                    task: &task,
                    screener: &screener,
                    behaviour: &HonestWorker,
                    storage: crate::ParticipantStorage::Full,
                    parallelism: Parallelism::serial(),
                    lanes: LaneWidth::default(),
                    ledger: CostLedger::new(),
                },
            );
            loop {
                match step(&part_ep, session.as_mut()) {
                    SessionPoll::Complete(result) => {
                        assert!(result.unwrap(), "honest participant must be accepted");
                        break;
                    }
                    SessionPoll::Progress => {}
                    SessionPoll::Idle => std::thread::yield_now(),
                }
            }
            let stats = part_ep.stats();
            (supervisor.join().unwrap(), stats)
        })
    }

    #[test]
    fn batched_step_matches_single_step_exactly() {
        let (single_outcome, single_stats) =
            cbs_round_with_stepper(&|ep, session| step_participant(ep, session));
        assert!(single_outcome.verdict.is_accepted());
        assert_eq!(single_outcome.reports.len(), 1);
        for budget in [1usize, 2, 4, 64] {
            let (outcome, stats) = cbs_round_with_stepper(&move |ep, session| {
                step_participant_batch(ep, session, budget)
            });
            assert_eq!(outcome, single_outcome, "budget {budget}");
            assert_eq!(stats, single_stats, "budget {budget}");
        }
    }

    #[test]
    fn batch_budget_one_is_single_step() {
        // With budget 1 the batch wrapper must be *literally* the single
        // stepper: an empty queue reports Idle, never Progress.
        let (_sup, part_ep) = duplex();
        let task = PasswordSearch::with_hidden_password(1, 3);
        let screener = task.match_screener();
        let scheme = CbsScheme {
            samples: 4,
            seed: 1,
            report_audit: 0,
        };
        let mut session = VerificationScheme::<Sha256>::participant_session(
            &scheme,
            ParticipantContext {
                task: &task,
                screener: &screener,
                behaviour: &HonestWorker,
                storage: crate::ParticipantStorage::Full,
                parallelism: Parallelism::serial(),
                lanes: LaneWidth::default(),
                ledger: CostLedger::new(),
            },
        );
        assert!(matches!(
            step_participant_batch(&part_ep, session.as_mut(), 1),
            SessionPoll::Idle
        ));
        assert!(matches!(
            step_participant_batch(&part_ep, session.as_mut(), 8),
            SessionPoll::Idle
        ));
    }

    #[test]
    #[should_panic(expected = "non-zero message budget")]
    fn zero_budget_batch_panics() {
        let (_sup, part_ep) = duplex();
        let task = PasswordSearch::with_hidden_password(1, 3);
        let screener = task.match_screener();
        let scheme = CbsScheme {
            samples: 4,
            seed: 1,
            report_audit: 0,
        };
        let mut session = VerificationScheme::<Sha256>::participant_session(
            &scheme,
            ParticipantContext {
                task: &task,
                screener: &screener,
                behaviour: &HonestWorker,
                storage: crate::ParticipantStorage::Full,
                parallelism: Parallelism::serial(),
                lanes: LaneWidth::default(),
                ledger: CostLedger::new(),
            },
        );
        let _ = step_participant_batch(&part_ep, session.as_mut(), 0);
    }
}
