//! Sample-index selection.
//!
//! Interactive CBS (Step 2): the supervisor draws `m` uniform indices
//! *after* receiving the commitment — [`draw_samples`].
//!
//! Non-interactive CBS (Section 4.1, Eq. 4): the participant derives the
//! indices from the committed root itself through a one-way hash chain —
//! [`derive_samples`] — so they are fixed the moment the commitment exists,
//! yet unpredictable beforehand.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ugc_grid::CostLedger;
use ugc_hash::{HashChain, HashFunction, IteratedHash};

/// Draws `m` uniform sample indices in `[0, n)`, with replacement, from a
/// seeded cryptographic-quality generator (the supervisor's die).
///
/// The paper draws with replacement ("randomly generates m numbers in
/// domain [1, n]"); Theorem 3's independence argument relies on it.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use ugc_core::sampling::draw_samples;
///
/// let s = draw_samples(42, 10, 100);
/// assert_eq!(s.len(), 10);
/// assert!(s.iter().all(|&i| i < 100));
/// assert_eq!(s, draw_samples(42, 10, 100)); // deterministic per seed
/// ```
#[must_use]
pub fn draw_samples(seed: u64, m: usize, n: u64) -> Vec<u64> {
    assert!(n > 0, "domain must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m).map(|_| rng.random_range(0..n)).collect()
}

/// Eq. (4): derives `m` sample indices from the committed root via the
/// hash chain `i_k = (g^k(Φ(R)) mod n) + 1`.
///
/// This implementation is 0-indexed: it returns `g^k(Φ(R)) mod n ∈ [0, n)`
/// (the paper's `+1` merely shifts to 1-indexing). Digests become integers
/// by reading their first 8 bytes little-endian
/// ([`HashFunction::digest_to_u64`]).
///
/// Each chain element costs `k_g` unit hashes where `k_g` is the iteration
/// count of `g`; the total `m·k_g` is charged to `ledger` as `g`
/// evaluations — both the participant (derivation) and the supervisor
/// (re-derivation) pay it.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use ugc_core::sampling::derive_samples;
/// use ugc_grid::CostLedger;
/// use ugc_hash::{IteratedHash, Sha256};
///
/// let g = IteratedHash::<Sha256>::new(3);
/// let ledger = CostLedger::new();
/// let samples = derive_samples(&g, b"some root digest", 5, 1000, &ledger);
/// assert_eq!(samples.len(), 5);
/// assert!(samples.iter().all(|&i| i < 1000));
/// assert_eq!(ledger.report().g_evals, 15); // m × k unit hashes
/// ```
#[must_use]
pub fn derive_samples<H: HashFunction>(
    g: &IteratedHash<H>,
    root: &[u8],
    m: usize,
    n: u64,
    ledger: &CostLedger,
) -> Vec<u64> {
    assert!(n > 0, "domain must be non-empty");
    let chain = HashChain::new(*g, root);
    let samples: Vec<u64> = chain
        .take(m)
        .map(|digest| H::digest_to_u64(&digest) % n)
        .collect();
    ledger.charge_g(HashChain::cost_of(g, m as u64));
    samples
}

/// Convenience: derives samples and reports whether they all fall inside a
/// predicate set (the retry attacker's per-attempt test, with early exit —
/// the attacker stops deriving at the first escaping sample).
///
/// Returns `(all_inside, chain_elements_consumed)`.
pub(crate) fn derive_until_outside<H: HashFunction, P: FnMut(u64) -> bool>(
    g: &IteratedHash<H>,
    root: &[u8],
    m: usize,
    n: u64,
    ledger: &CostLedger,
    mut inside: P,
) -> (bool, u64) {
    let chain = HashChain::new(*g, root);
    let mut consumed = 0u64;
    for digest in chain.take(m) {
        consumed += 1;
        let index = H::digest_to_u64(&digest) % n;
        if !inside(index) {
            ledger.charge_g(consumed * g.iterations());
            return (false, consumed);
        }
    }
    ledger.charge_g(consumed * g.iterations());
    (true, consumed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_hash::{Md5, Sha256};

    #[test]
    fn draw_is_deterministic_per_seed() {
        assert_eq!(draw_samples(1, 20, 50), draw_samples(1, 20, 50));
        assert_ne!(draw_samples(1, 20, 50), draw_samples(2, 20, 50));
    }

    #[test]
    fn draw_in_range() {
        for &n in &[1u64, 2, 7, 1 << 30] {
            assert!(draw_samples(9, 100, n).iter().all(|&i| i < n));
        }
    }

    #[test]
    fn draw_roughly_uniform() {
        let samples = draw_samples(7, 40_000, 4);
        let mut counts = [0u32; 4];
        for s in samples {
            counts[s as usize] += 1;
        }
        for c in counts {
            // Each bucket expects 10000 ± 4σ (σ ≈ 87).
            assert!((9600..=10400).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn draw_rejects_empty_domain() {
        let _ = draw_samples(0, 1, 0);
    }

    #[test]
    fn derive_is_deterministic_in_root() {
        let g = IteratedHash::<Sha256>::new(1);
        let ledger = CostLedger::new();
        let a = derive_samples(&g, b"rootA", 8, 100, &ledger);
        let b = derive_samples(&g, b"rootA", 8, 100, &ledger);
        let c = derive_samples(&g, b"rootB", 8, 100, &ledger);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_matches_manual_chain() {
        let g = IteratedHash::<Md5>::new(2);
        let ledger = CostLedger::new();
        let samples = derive_samples(&g, b"seed", 3, 97, &ledger);
        let g1 = g.apply(b"seed");
        let g2 = g.apply(g1.as_ref());
        let g3 = g.apply(g2.as_ref());
        assert_eq!(
            samples,
            vec![
                Md5::digest_to_u64(&g1) % 97,
                Md5::digest_to_u64(&g2) % 97,
                Md5::digest_to_u64(&g3) % 97,
            ]
        );
    }

    #[test]
    fn derive_charges_g_cost() {
        let g = IteratedHash::<Md5>::new(100);
        let ledger = CostLedger::new();
        let _ = derive_samples(&g, b"x", 7, 10, &ledger);
        assert_eq!(ledger.report().g_evals, 700);
    }

    #[test]
    fn derive_roughly_uniform() {
        let g = IteratedHash::<Sha256>::new(1);
        let ledger = CostLedger::new();
        // Many independent roots, one sample each, 4 buckets.
        let mut counts = [0u32; 4];
        for i in 0..8000u64 {
            let s = derive_samples(&g, &i.to_le_bytes(), 1, 4, &ledger);
            counts[s[0] as usize] += 1;
        }
        for c in counts {
            assert!((1800..=2200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn early_exit_consumes_fewer_elements() {
        let g = IteratedHash::<Sha256>::new(1);
        let ledger = CostLedger::new();
        // Nothing is "inside": must stop after the first chain element.
        let (ok, consumed) = derive_until_outside(&g, b"r", 16, 100, &ledger, |_| false);
        assert!(!ok);
        assert_eq!(consumed, 1);
        // Everything inside: consumes all m.
        let (ok, consumed) = derive_until_outside(&g, b"r", 16, 100, &ledger, |_| true);
        assert!(ok);
        assert_eq!(consumed, 16);
    }

    #[test]
    fn early_exit_agrees_with_full_derivation() {
        let g = IteratedHash::<Sha256>::new(1);
        let ledger = CostLedger::new();
        let samples = derive_samples(&g, b"root", 8, 50, &ledger);
        let inside = |i: u64| i < 25;
        let expected = samples.iter().all(|&i| inside(i));
        let (ok, _) = derive_until_outside(&g, b"root", 8, 50, &ledger, inside);
        assert_eq!(ok, expected);
    }
}
