//! Fleet orchestration: verify many participants over a partitioned domain.
//!
//! The paper's model (Section 2.1) has the supervisor partition `X` into
//! per-participant sub-domains. This module runs one verification round
//! against every participant and aggregates verdicts, screened reports and
//! costs into a fleet-level summary. It is the entry point a downstream
//! project (a SETI@home, a screening grid) would actually call.
//!
//! Every round runs on the [`SessionEngine`](crate::engine::SessionEngine):
//! the supervisor multiplexes one
//! [`VerificationScheme`](crate::session::VerificationScheme) session per
//! member over either per-participant links
//! ([`FleetTransport::Direct`]) or one shared link into a relaying
//! [`Broker`](ugc_grid::Broker) ([`FleetTransport::Brokered`]) — the same
//! code path either way, and bit-identical verdicts, byte counts and cost
//! ledgers to the historical one-thread-pair-per-round implementation.

use crate::backend::{InProcessBackend, OpenRound, RoundSpec, TransportBackend};
use crate::engine::{SessionEngine, SessionResult};
use crate::journal::{
    charge_report, report_delta, summary_digest, CampaignHeader, CampaignRecorder, DurableCampaign,
};
use crate::scheme::cbs::CbsScheme;
use crate::scheme::double_check::DoubleCheckScheme;
use crate::scheme::naive::NaiveScheme;
use crate::scheme::ni_cbs::NiCbsScheme;
use crate::scheme::ringer::RingerScheme;
use crate::session::{
    drive_participant, step_participant_batch, ParticipantContext, ParticipantSession, SessionPoll,
    SupervisorContext, VerificationScheme,
};
use crate::{ParticipantStorage, RoundOutcome, SchemeError, Verdict};
use std::time::{Duration, Instant};
use ugc_grid::runtime::{
    FaultEvent, FaultLog, FaultPlan, FaultyEndpoint, GridScheduler, GridTask, TaskPoll,
};
use ugc_grid::{CostLedger, CostReport, Throughput, WorkerBehaviour};

pub use crate::backend::FleetTransport;
use ugc_hash::HashFunction;
use ugc_merkle::{LaneWidth, Parallelism};
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Which verification scheme a fleet round (or one member of a mixed
/// campaign) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetScheme {
    /// Interactive CBS (Section 3).
    Cbs {
        /// Samples per participant.
        samples: usize,
        /// Report-audit size (0 disables).
        report_audit: usize,
    },
    /// Non-interactive CBS (Section 4).
    NiCbs {
        /// Samples per participant.
        samples: usize,
        /// Hardness `k` of the sample generator `g = H^k`.
        g_iterations: u64,
        /// Report-audit size (0 disables).
        report_audit: usize,
    },
    /// Naive sampling (Section 1): flat upload, spot-check `m` samples.
    Naive {
        /// Samples per participant.
        samples: usize,
    },
    /// The Golle–Mironov ringer baseline (Section 1.1); requires a
    /// one-way `f`.
    Ringer {
        /// Ringers planted per participant.
        ringers: usize,
    },
    /// The double-check baseline (module table, row 1): assign the share
    /// twice and compare — two participant slots per member.
    DoubleCheck,
}

impl FleetScheme {
    /// Builds the member's scheme object with its derived seed — the
    /// bridge from a declarative fleet configuration to a
    /// [`MemberSpec`]-based mixed campaign.
    #[must_use]
    pub fn instantiate<H: HashFunction>(self, seed: u64) -> Box<dyn VerificationScheme<H>> {
        match self {
            FleetScheme::Cbs {
                samples,
                report_audit,
            } => Box::new(CbsScheme {
                samples,
                seed,
                report_audit,
            }),
            FleetScheme::NiCbs {
                samples,
                g_iterations,
                report_audit,
            } => Box::new(NiCbsScheme {
                samples,
                g_iterations,
                report_audit,
                audit_seed: seed,
            }),
            FleetScheme::Naive { samples } => Box::new(NaiveScheme { samples, seed }),
            FleetScheme::Ringer { ringers } => Box::new(RingerScheme { ringers, seed }),
            FleetScheme::DoubleCheck => Box::new(DoubleCheckScheme),
        }
    }

    /// How many participant slots one member of this scheme fills.
    #[must_use]
    pub fn slots(self) -> usize {
        match self {
            FleetScheme::DoubleCheck => 2,
            _ => 1,
        }
    }
}

/// Configuration of a fleet verification round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// The scheme and its parameters.
    pub scheme: FleetScheme,
    /// Participant tree storage mode.
    pub storage: ParticipantStorage,
    /// Base seed; participant `i` gets a derived seed.
    pub seed: u64,
    /// Per-participant tree-build parallelism
    /// ([`Parallelism::default()`] = one thread per available core).
    /// Results are bit-identical at any setting; only wall-clock time
    /// changes.
    pub parallelism: Parallelism,
}

/// One participant's slice of the fleet round.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// Index of the participant within the fleet.
    pub participant: usize,
    /// The sub-domain it was assigned.
    pub share: Domain,
    /// The full outcome of its verification round.
    pub outcome: RoundOutcome,
    /// How many session attempts this member took (1 unless chaos failed
    /// earlier attempts and the session was reassigned).
    pub attempts: u32,
}

/// Aggregated result of a fleet round.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Per-participant outcomes, in assignment order.
    pub members: Vec<FleetMember>,
    /// Screened reports from *accepted* participants only, in input order.
    pub reports: Vec<ScreenReport>,
    /// Wall-clock throughput of the whole run. `sessions` counts every
    /// attempt (including retried ones); `bytes` counts only attempts
    /// that settled successfully, so it replays bit-identically (see
    /// [`Throughput::bytes`]).
    pub throughput: Throughput,
    /// Every fault injected by the configured [`FaultPlan`], sorted —
    /// identical across replays of the same seed.
    pub fault_events: Vec<FaultEvent>,
}

impl FleetSummary {
    /// Participants whose work was accepted.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.members.iter().filter(|m| m.outcome.accepted).count()
    }

    /// Participants caught cheating (or otherwise rejected).
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.members.len() - self.accepted()
    }

    /// The sub-domains that must be reassigned (their results cannot be
    /// trusted).
    #[must_use]
    pub fn shares_to_reassign(&self) -> Vec<Domain> {
        self.members
            .iter()
            .filter(|m| !m.outcome.accepted)
            .map(|m| m.share)
            .collect()
    }

    /// Total bytes received by the supervisor across the fleet.
    #[must_use]
    pub fn supervisor_bytes_received(&self) -> u64 {
        self.members
            .iter()
            .map(|m| m.outcome.supervisor_link.bytes_received)
            .sum()
    }

    /// The verdict for participant `i`.
    #[must_use]
    pub fn verdict_of(&self, i: usize) -> Option<&Verdict> {
        self.members.get(i).map(|m| &m.outcome.verdict)
    }
}

/// Configuration of a mixed-scheme fleet round (see [`run_mixed_fleet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixedFleetConfig {
    /// Participant tree storage mode (CBS/NI-CBS members).
    pub storage: ParticipantStorage,
    /// Per-participant tree-build parallelism.
    pub parallelism: Parallelism,
    /// Per-participant message-parallel digest lane width. Execution-only:
    /// digests, verdicts and ledgers are bit-identical at any setting, so
    /// it is excluded from the durable campaign parameter blob.
    pub lanes: LaneWidth,
    /// Transport the engine multiplexes the sessions over.
    pub transport: FleetTransport,
    /// Wrap every message in a [`Message::Session`](ugc_grid::Message)
    /// envelope with engine-assigned session ids — required only when
    /// members' task ids collide; costs 9 bytes per message.
    pub envelope: bool,
    /// Seeded fault injection on every participant link (`None` runs
    /// clean). The whole campaign — faults, failures, reassignments,
    /// verdicts — replays bit-identically from the plan's seed.
    pub chaos: Option<FaultPlan>,
    /// Per-session inactivity deadline: a session whose peer goes silent
    /// this long fails with [`SchemeError::TimedOut`] instead of hanging
    /// the engine. Required when the chaos plan drops messages.
    pub deadline: Option<Duration>,
    /// How many times a *failed* (errored, not rejected) session is
    /// reassigned to a fresh participant before its error propagates.
    /// Cheating verdicts are never retried.
    pub retries: u32,
    /// How participant sessions are executed. `None` runs one OS thread
    /// per participant slot (the PR 4 runtime). `Some(w)` runs every
    /// slot as a poll-driven state machine multiplexed by a
    /// [`GridScheduler`] over `w` OS threads — thousands of participants
    /// on a fixed pool. Verdicts, ledgers and the fault log are
    /// bit-identical at any setting (`tests/scheduler_equivalence.rs`);
    /// only the thread count changes.
    pub workers: Option<usize>,
    /// Seed for the scheduler's work-stealing victim order (used only
    /// when [`workers`](Self::workers) is set). Scheduling-only: any
    /// seed produces identical verdicts, fault logs and byte counts —
    /// the knob exists so tests and the bench divergence gate can
    /// *prove* that invariant, not to tune throughput.
    pub steal_seed: u64,
}

impl Default for MixedFleetConfig {
    fn default() -> Self {
        MixedFleetConfig {
            storage: ParticipantStorage::Full,
            parallelism: Parallelism::default(),
            lanes: LaneWidth::default(),
            transport: FleetTransport::Direct,
            envelope: false,
            chaos: None,
            deadline: None,
            retries: 0,
            workers: None,
            steal_seed: 0,
        }
    }
}

/// The link id participant slot `slot` draws its fault schedule from in
/// reassignment round `round` (0 = the initial attempt). Exposed so tests
/// can predict — and pick seeds around — which links a [`FaultPlan`] will
/// crash.
#[must_use]
pub fn chaos_link_id(round: u32, slot: usize) -> u64 {
    (u64::from(round) << 32) | slot as u64
}

/// One member of a mixed-scheme fleet: a scheme and the behaviours filling
/// its participant slots (one for every scheme but double-check's two).
pub struct MemberSpec<'a, H: HashFunction> {
    /// The verification scheme this member runs (already seeded).
    pub scheme: &'a dyn VerificationScheme<H>,
    /// One behaviour per participant slot.
    pub behaviours: Vec<&'a dyn WorkerBehaviour>,
}

/// Runs one verification round against every behaviour in `fleet`, each on
/// its own share of `domain` (shares differ in size by at most one input).
///
/// All rounds run concurrently through one
/// [`SessionEngine`](crate::engine::SessionEngine) event loop —
/// participants on their own threads, sessions multiplexed on the calling
/// thread — and deterministically per `config.seed`.
///
/// # Errors
///
/// The first protocol error encountered (cheating is *not* an error; it
/// shows up as a rejected member).
pub fn run_fleet<H, T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    fleet: &[B],
    config: &FleetConfig,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    run_fleet_over::<H, T, S, B>(
        task,
        screener,
        domain,
        fleet,
        config,
        FleetTransport::Direct,
    )
}

/// [`run_fleet`] with an explicit transport: the same sessions, multiplexed
/// either over per-participant links or through a relaying broker.
/// Verdicts and ledgers are identical either way.
///
/// Deprecated in favour of setting
/// [`MixedFleetConfig::transport`] and calling [`run_mixed_fleet`] (or
/// [`run_mixed_fleet_on`] with a connected backend): transport is
/// configuration, not a separate entry point. Kept as a thin wrapper for
/// existing callers.
///
/// # Errors
///
/// As [`run_fleet`].
pub fn run_fleet_over<H, T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    fleet: &[B],
    config: &FleetConfig,
    transport: FleetTransport,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    let schemes: Vec<Box<dyn VerificationScheme<H>>> = (0..fleet.len())
        .map(|i| {
            let seed = config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64);
            config.scheme.instantiate::<H>(seed)
        })
        .collect();
    let members: Vec<MemberSpec<'_, H>> = schemes
        .iter()
        .zip(fleet)
        .map(|(scheme, behaviour)| MemberSpec {
            scheme: scheme.as_ref(),
            behaviours: vec![behaviour as &dyn WorkerBehaviour],
        })
        .collect();
    run_mixed_fleet(
        task,
        screener,
        domain,
        &members,
        &MixedFleetConfig {
            storage: config.storage,
            parallelism: config.parallelism,
            transport,
            ..MixedFleetConfig::default()
        },
    )
}

/// Runs one verification round for an arbitrary mix of schemes and
/// behaviours — the full generality of the session engine: every member
/// gets its own share of `domain`, its own (already seeded) scheme and its
/// own behaviour(s), and all sessions interleave over one transport, be it
/// per-participant links or a relaying broker.
///
/// Participant execution follows [`MixedFleetConfig::workers`]: one OS
/// thread per slot by default, or — with a worker count set — every slot
/// as a poll-driven state machine multiplexed by a
/// [`GridScheduler`] over that fixed pool (through the
/// [`ugc_grid::runtime`] harness for the brokered transport), which is
/// how a thousand-participant campaign runs on four threads. With
/// [`MixedFleetConfig::chaos`] set, each link is decorated with the
/// seeded fault plan; sessions that fail under chaos (crashes, timeouts,
/// scrambled protocol) are *reassigned* — rerun on fresh participants
/// with fresh fault schedules — up to [`MixedFleetConfig::retries`]
/// times. The entire campaign, fault log included, replays bit-identically
/// from the plan's seed — at any worker count.
///
/// # Errors
///
/// The first protocol error still standing after all retries (cheating is
/// a rejected member, not an error), or invalid configuration (empty
/// fleet, unsplittable domain, behaviour count not matching a scheme's
/// slots).
pub fn run_mixed_fleet<H, T, S>(
    task: &T,
    screener: &S,
    domain: Domain,
    members: &[MemberSpec<'_, H>],
    config: &MixedFleetConfig,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    let mut backend = InProcessBackend::new(config.transport);
    run_mixed_fleet_inner(task, screener, domain, members, config, None, &mut backend)
}

/// [`run_mixed_fleet`] over an explicit [`TransportBackend`] — how a
/// campaign runs across OS processes: connect a
/// [`RemoteGridBackend`](crate::RemoteGridBackend) to a `ugc broker
/// serve` relay and pass it here. The round loop, verdicts, ledgers and
/// summary digest are the same code and the same bits as the in-process
/// backends.
///
/// # Errors
///
/// Everything [`run_mixed_fleet`] can raise, plus
/// [`SchemeError::InvalidConfig`] when `config.transport` disagrees with
/// `backend.kind()` or the backend cannot serve the configuration (a
/// remote backend given a chaos plan or a multi-round retry budget it
/// ends up needing).
pub fn run_mixed_fleet_on<H, T, S>(
    task: &T,
    screener: &S,
    domain: Domain,
    members: &[MemberSpec<'_, H>],
    config: &MixedFleetConfig,
    backend: &mut dyn TransportBackend,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    run_mixed_fleet_inner(task, screener, domain, members, config, None, backend)
}

/// [`run_mixed_fleet`] with a write-ahead journal: every state transition
/// is journaled through `campaign` *before* the orchestrator acts on it,
/// so a killed process resumes from the journal — replaying committed
/// rounds instead of re-running them — and finishes with verdicts,
/// attempts, cost ledgers, fault log and summary digest bit-identical to
/// a never-killed run.
///
/// The `campaign` comes from [`DurableCampaign::create`] (fresh) or
/// [`DurableCampaign::resume`] (picking up a kill). Its header must
/// describe exactly this call: same fleet shape, domain and
/// digest-relevant config. A campaign resumed from a *sealed* journal
/// re-derives its summary without writing anything.
///
/// # Errors
///
/// Everything [`run_mixed_fleet`] can raise, plus
/// [`SchemeError::Journal`] when the header does not match this call or
/// the journal fails mid-campaign (I/O, or an armed
/// [`CrashPlan`](ugc_journal::CrashPlan) kill point).
pub fn run_durable_fleet<H, T, S>(
    task: &T,
    screener: &S,
    domain: Domain,
    members: &[MemberSpec<'_, H>],
    config: &MixedFleetConfig,
    campaign: &mut DurableCampaign,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    let mut backend = InProcessBackend::new(config.transport);
    run_durable_fleet_on(
        task,
        screener,
        domain,
        members,
        config,
        campaign,
        &mut backend,
    )
}

/// [`run_durable_fleet`] over an explicit [`TransportBackend`]. Because
/// the journaled header stores the transport's *digest class* (see
/// [`CampaignHeader`]), a campaign journaled against the in-process
/// broker may resume over a remote grid — and vice versa — while a
/// direct-transport journal refuses both.
///
/// # Errors
///
/// As [`run_durable_fleet`] and [`run_mixed_fleet_on`].
pub fn run_durable_fleet_on<H, T, S>(
    task: &T,
    screener: &S,
    domain: Domain,
    members: &[MemberSpec<'_, H>],
    config: &MixedFleetConfig,
    campaign: &mut DurableCampaign,
    backend: &mut dyn TransportBackend,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    let expected =
        CampaignHeader::for_campaign(members, domain, config, campaign.header().app.clone());
    if &expected != campaign.header() {
        return Err(SchemeError::Journal {
            reason: format!(
                "journal header does not describe this campaign \
                 (journaled {:?}, called with {:?})",
                campaign.header(),
                expected
            ),
        });
    }
    run_mixed_fleet_inner(
        task,
        screener,
        domain,
        members,
        config,
        Some(campaign),
        backend,
    )
}

fn run_mixed_fleet_inner<H, T, S>(
    task: &T,
    screener: &S,
    domain: Domain,
    members: &[MemberSpec<'_, H>],
    config: &MixedFleetConfig,
    durable: Option<&mut DurableCampaign>,
    backend: &mut dyn TransportBackend,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    if config.transport != backend.kind() {
        return Err(SchemeError::InvalidConfig {
            reason: "config.transport disagrees with the connected backend",
        });
    }
    if members.is_empty() {
        return Err(SchemeError::InvalidConfig {
            reason: "fleet must contain at least one participant",
        });
    }
    for member in members {
        if member.behaviours.len() != member.scheme.participant_slots() {
            return Err(SchemeError::InvalidConfig {
                reason: "behaviour count must match the scheme's participant slots",
            });
        }
    }
    let shares: Vec<Domain> = domain
        .split(members.len() as u64)
        .map_err(|_| SchemeError::InvalidConfig {
            reason: "domain cannot be partitioned over the fleet",
        })?
        .into_iter()
        .collect();
    if shares.len() != members.len() {
        return Err(SchemeError::InvalidConfig {
            reason: "more participants than domain inputs",
        });
    }

    // Ledgers are per member and shared across attempts: a reassigned
    // session's ledger honestly accumulates the work its failed attempts
    // burned.
    let sup_ledgers: Vec<CostLedger> = members.iter().map(|_| CostLedger::new()).collect();
    let part_ledgers: Vec<CostLedger> = members.iter().map(|_| CostLedger::new()).collect();

    // ugc-lint: allow(wall-clock): reporting-only — feeds the Throughput summary, never a verdict or schedule
    let started = Instant::now();
    let (recorder, replay): (Option<&CampaignRecorder>, _) = match durable {
        Some(campaign) => {
            let replay = campaign.take_replay();
            (Some(campaign.recorder()), replay)
        }
        None => (None, None),
    };
    let mut attempts = vec![0u32; members.len()];
    let mut finals: Vec<Option<SessionResult>> = members.iter().map(|_| None).collect();
    let mut part_outcomes: Vec<Vec<Result<bool, SchemeError>>> =
        members.iter().map(|_| Vec::new()).collect();
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    let mut total_sessions = 0u64;
    let mut total_bytes = 0u64;
    let mut round = 0u32;
    if let Some(state) = replay {
        // A resumed campaign: fast-forward to where the journal's last
        // committed round left the dead supervisor, charging the replayed
        // per-round ledger deltas into the fresh ledgers.
        attempts = state.attempts;
        finals = state.finals;
        part_outcomes = state.part_outcomes;
        fault_events = state.fault_events;
        total_sessions = state.total_sessions;
        total_bytes = state.total_bytes;
        round = state.next_round;
        for (ledger, delta) in sup_ledgers.iter().zip(&state.sup_deltas) {
            charge_report(ledger, delta);
        }
        for (ledger, delta) in part_ledgers.iter().zip(&state.part_deltas) {
            charge_report(ledger, delta);
        }
    }
    let mut pending: Vec<usize> = (0..members.len())
        .filter(|&i| {
            finals[i]
                .as_ref()
                .map_or(true, |session| session.outcome.is_err())
        })
        .collect();
    while !pending.is_empty() && round <= config.retries {
        // Journal-before-effect: the round's roster is durable before any
        // of its state transitions happen, so a crash mid-round resumes
        // from the previous round boundary, never a half-applied one.
        if let Some(rec) = recorder {
            rec.round_start(round, &pending);
        }
        for &i in &pending {
            attempts[i] += 1;
            part_outcomes[i].clear();
        }
        // Ledger snapshots bracket the round so its deltas can be
        // journaled (ledgers are monotonic, so deltas replay exactly).
        let snapshots: Vec<(CostReport, CostReport)> = if recorder.is_some() {
            pending
                .iter()
                .map(|&i| (sup_ledgers[i].report(), part_ledgers[i].report()))
                .collect()
        } else {
            Vec::new()
        };
        let roster: Vec<(usize, &MemberSpec<'_, H>, Domain)> = pending
            .iter()
            .map(|&i| (i, &members[i], shares[i]))
            .collect();
        let output = run_fleet_round(
            task,
            screener,
            &roster,
            &sup_ledgers,
            &part_ledgers,
            config,
            round,
            recorder,
            backend,
        )?;
        total_sessions += roster.len() as u64;
        for ((orig, _, _), session) in roster.iter().zip(output.sessions) {
            // Only settled (successful) attempts count toward the byte
            // total. A failed attempt's traffic is cut off mid-protocol
            // by its death: how many in-flight messages the supervisor
            // managed to charge before the broker's Gone NACK reached it
            // is a pump-timing race, not a function of the seed — most
            // visibly for double-check members, where the NACK for one
            // participant races mail still in flight from its live
            // sibling. Excluding failed attempts keeps `bytes` a replay
            // digest; `sessions` still counts every attempt.
            if session.outcome.is_ok() {
                total_bytes += session.link.bytes_sent + session.link.bytes_received;
            }
            finals[*orig] = Some(session);
        }
        for (roster_index, result) in output.part_results {
            part_outcomes[roster[roster_index].0].push(result);
        }
        if let Some(rec) = recorder {
            for (slot, &i) in pending.iter().enumerate() {
                let (sup_before, part_before) = &snapshots[slot];
                rec.member_state(
                    i,
                    &report_delta(&sup_ledgers[i].report(), sup_before),
                    &report_delta(&part_ledgers[i].report(), part_before),
                    &part_outcomes[i],
                );
            }
            // The commit marker: a round is replayed on resume only once
            // its RoundEnd record is on disk.
            rec.round_end(round, &output.events);
            if let Some(reason) = rec.failure() {
                return Err(SchemeError::Journal { reason });
            }
        }
        fault_events.extend(output.events);
        pending = roster
            .iter()
            .filter(|(orig, _, _)| {
                finals[*orig]
                    .as_ref()
                    .is_some_and(|session| session.outcome.is_err())
            })
            .map(|(orig, _, _)| *orig)
            .collect();
        if pending.is_empty() || round >= config.retries {
            break;
        }
        round += 1;
    }
    // Rounds arrive sorted individually; a retried campaign needs one
    // global pass to honour the "sorted" contract on the aggregate.
    fault_events.sort_unstable();

    let mut outcomes = Vec::with_capacity(members.len());
    for ((result, sup_ledger), part_ledger) in finals
        .into_iter()
        .map(|r| r.expect("every member ran at least one attempt"))
        .zip(&sup_ledgers)
        .zip(&part_ledgers)
    {
        let outcome = result.outcome?;
        outcomes.push(RoundOutcome::new(
            outcome.verdict,
            sup_ledger.report(),
            part_ledger.report(),
            result.link,
            outcome.reports,
        ));
    }
    // Participant-side protocol errors surface only if every supervisor
    // session succeeded — the legacy `run_*` precedence. Under chaos the
    // injected crashes *are* participant errors, so there they are part of
    // the record (the fault log), not failures.
    if config.chaos.is_none() {
        for result in part_outcomes.iter().flatten() {
            let _ = result.clone()?;
        }
    }

    let throughput = Throughput {
        wall: started.elapsed(),
        sessions: total_sessions,
        bytes: total_bytes,
    };
    let members: Vec<FleetMember> = outcomes
        .into_iter()
        .zip(shares)
        .enumerate()
        .map(|(i, (outcome, share))| FleetMember {
            participant: i,
            share,
            outcome,
            attempts: attempts[i],
        })
        .collect();
    let mut reports: Vec<ScreenReport> = members
        .iter()
        .filter(|m| m.outcome.accepted)
        .flat_map(|m| m.outcome.reports.iter().cloned())
        .collect();
    reports.sort_by_key(|r| r.input);
    let summary = FleetSummary {
        members,
        reports,
        throughput,
        fault_events,
    };
    if let Some(rec) = recorder {
        // The attestation: journal the digest the campaign is about to
        // report, then seal the record chain under it.
        rec.finish(&summary_digest(&summary))?;
    }
    Ok(summary)
}

/// What one engine round over one roster produced.
struct RoundOutput {
    /// Per-roster-entry session results, in roster order.
    sessions: Vec<SessionResult>,
    /// Per-slot participant results, tagged with their roster index.
    part_results: Vec<(usize, Result<bool, SchemeError>)>,
    /// Faults injected during the round, sorted.
    events: Vec<FaultEvent>,
}

/// How many inbound messages one scheduler poll may drain from a slot's
/// queue before handing the worker back. Batching amortises the
/// run-queue round trip over a burst of queued mail; the value is purely
/// a latency/fairness trade-off — digests are identical at any budget
/// (`step_participant_batch` is a loop over the single stepper).
const STEP_BATCH_BUDGET: usize = 8;

/// One participant slot as a poll-driven task on the grid scheduler's
/// run-queue: the session state machine plus its fault-decorated link.
/// Completion drops the link immediately, so the broker pump — and a
/// supervisor session waiting on the verdict acknowledgement — observe
/// the hang-up without waiting for the whole pool to drain.
struct SlotTask<'a> {
    roster_index: usize,
    link: Option<FaultyEndpoint>,
    session: Box<dyn ParticipantSession + 'a>,
    outcome: Option<Result<bool, SchemeError>>,
}

impl SlotTask<'_> {
    /// The completed slot's result, tagged with its roster index.
    fn into_result(self) -> (usize, Result<bool, SchemeError>) {
        (
            self.roster_index,
            self.outcome
                .expect("scheduler ran every task to completion"),
        )
    }
}

impl GridTask for SlotTask<'_> {
    fn poll(&mut self) -> TaskPoll {
        let Some(link) = self.link.as_ref() else {
            return TaskPoll::Complete;
        };
        match step_participant_batch(link, self.session.as_mut(), STEP_BATCH_BUDGET) {
            SessionPoll::Progress => TaskPoll::Progress,
            SessionPoll::Idle => TaskPoll::Idle,
            SessionPoll::Complete(result) => {
                self.outcome = Some(result);
                self.link = None; // hang up so the peer sees the closure
                TaskPoll::Complete
            }
        }
    }
}

/// Runs one engine round for `roster` (a subset of the fleet, on
/// reassignment rounds): registers one supervisor session per entry,
/// asks the backend to open the round's transport, drives any local
/// participant slots — each behind a [`FaultyEndpoint`] drawing its
/// schedule from [`chaos_link_id`]`(round, slot)` — and multiplexes the
/// supervisor sessions over the engine side the backend produced.
/// Remote backends open with no local slots; their participants run in
/// other processes and report back as [`SlotReport`](crate::SlotReport)s.
#[allow(clippy::too_many_arguments)] // private plumbing under run_mixed_fleet_inner
fn run_fleet_round<H, T, S>(
    task: &T,
    screener: &S,
    roster: &[(usize, &MemberSpec<'_, H>, Domain)],
    sup_ledgers: &[CostLedger],
    part_ledgers: &[CostLedger],
    config: &MixedFleetConfig,
    round: u32,
    recorder: Option<&CampaignRecorder>,
    backend: &mut dyn TransportBackend,
) -> Result<RoundOutput, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
{
    let mut engine = if config.envelope {
        SessionEngine::enveloped()
    } else {
        SessionEngine::new()
    };
    if let Some(deadline) = config.deadline {
        engine = engine.with_deadline(deadline);
    }
    if let Some(rec) = recorder {
        // The engine journals one Settled record per session as the round
        // completes; registration order below == roster order, which is
        // what lets resume map Settled records back to members.
        engine.with_recorder(rec);
    }
    // Task ids are one global counter across the roster's slots, so
    // single-slot member `i` of a full-fleet round keeps task id `i`.
    let mut next_task_id = 0u64;
    let mut routing_ids: Vec<Vec<u64>> = Vec::with_capacity(roster.len());
    for (orig, member, share) in roster {
        let slots = member.scheme.participant_slots();
        let task_ids: Vec<u64> = (0..slots as u64).map(|s| next_task_id + s).collect();
        next_task_id += slots as u64;
        let session = member.scheme.supervisor_session(SupervisorContext {
            task,
            screener,
            domain: *share,
            task_ids: task_ids.clone(),
            ledger: sup_ledgers[*orig].clone(),
        });
        routing_ids.push(engine.add_session(session, task_ids)?);
    }

    // Global slot order (the broker hands assignment k to participant k,
    // so order is load-bearing for the relayed transports).
    let slot_table: Vec<(usize, usize)> = roster
        .iter()
        .enumerate()
        .flat_map(|(r, (_, member, _))| (0..member.behaviours.len()).map(move |s| (r, s)))
        .collect();

    // One session factory for both transports and both execution models:
    // build the slot's participant state machine, tagged with its roster
    // index.
    let build_slot = |global_slot: usize| {
        let (r, s) = slot_table[global_slot];
        let (orig, member, _) = &roster[r];
        let session = member.scheme.participant_session(ParticipantContext {
            task,
            screener,
            behaviour: member.behaviours[s],
            storage: config.storage,
            parallelism: config.parallelism,
            lanes: config.lanes,
            ledger: part_ledgers[*orig].clone(),
        });
        (r, session)
    };
    // Thread-per-participant body (config.workers == None): drive the
    // session over the blocking loop. The thread owns its link: finishing
    // (or crashing) drops it, which is what lets a broker pump — and a
    // supervisor blocked mid-recv — observe the hang-up.
    let drive_slot = |global_slot: usize, link: &FaultyEndpoint| {
        let (r, mut session) = build_slot(global_slot);
        (r, drive_participant(link, session.as_mut()))
    };
    // Scheduler body (config.workers == Some(w)): the same session as a
    // poll-driven task, multiplexed with every other slot over the pool.
    let make_task = |global_slot: usize, link: FaultyEndpoint| {
        let (r, session) = build_slot(global_slot);
        SlotTask {
            roster_index: r,
            link: Some(link),
            session,
            outcome: None,
        }
    };

    // One flat routing id per global slot — what a Direct backend
    // registers each supervisor-side endpoint under; relayed backends
    // route by message ids and only need the count.
    let flat_routing: Vec<u64> = slot_table.iter().map(|&(r, s)| routing_ids[r][s]).collect();
    let OpenRound {
        mut engine_side,
        local_links,
        fault_logs,
        pump,
    } = backend.open_round(&RoundSpec {
        round,
        routing_ids: &flat_routing,
        chaos: config.chaos,
    })?;

    let (sessions, part_results) = if local_links.is_empty() {
        // Remote: the participants live in other OS processes. Run the
        // engine, then collect their slot reports over the still-open
        // connection — the ledger charges and outcomes that in-process
        // participants share directly.
        let sessions = engine.run(&mut engine_side);
        let reports = backend.close_round(slot_table.len())?;
        drop(engine_side);
        let mut part_results = Vec::with_capacity(reports.len());
        for report in reports {
            let slot = usize::try_from(report.slot)
                .ok()
                .filter(|s| *s < slot_table.len())
                .ok_or(SchemeError::InvalidConfig {
                    reason: "remote peer reported an unknown participant slot",
                })?;
            let (r, _) = slot_table[slot];
            let (orig, _, _) = roster[r];
            charge_report(&part_ledgers[orig], &report.costs);
            part_results.push((r, report.outcome));
        }
        (sessions, part_results)
    } else {
        match config.workers {
            Some(workers) => {
                let scheduler = GridScheduler::new(workers).with_steal_seed(config.steal_seed);
                let tasks: Vec<SlotTask<'_>> = local_links
                    .into_iter()
                    .enumerate()
                    .map(|(global_slot, link)| make_task(global_slot, link))
                    .collect();
                let (sessions, tasks) = std::thread::scope(|scope| {
                    let pool = scope.spawn(move || scheduler.run(tasks));
                    let sessions = engine.run(&mut engine_side);
                    // Close the supervisor side so chaos-stalled
                    // participants observe the hang-up instead of parking
                    // forever (and so a broker pump winds down).
                    drop(engine_side);
                    (sessions, pool.join().expect("scheduler pool panicked"))
                });
                (
                    sessions,
                    tasks.into_iter().map(SlotTask::into_result).collect(),
                )
            }
            None => std::thread::scope(|scope| {
                let drive_slot = &drive_slot;
                let handles: Vec<_> = local_links
                    .into_iter()
                    .enumerate()
                    .map(|(global_slot, link)| scope.spawn(move || drive_slot(global_slot, &link)))
                    .collect();
                let sessions = engine.run(&mut engine_side);
                // Close the supervisor side so chaos-stalled participants
                // observe the hang-up instead of blocking forever (and so
                // a broker pump winds down).
                drop(engine_side);
                let part_results: Vec<(usize, Result<bool, SchemeError>)> = handles
                    .into_iter()
                    .map(|h| h.join().expect("fleet participant panicked"))
                    .collect();
                (sessions, part_results)
            }),
        }
    };
    if let Some(pump) = pump {
        // Relay counters are diagnostics only; the round's books come
        // from the engine-side link stats and the shared ledgers.
        let _ = pump.join().expect("broker pump panicked");
    }
    let mut events: Vec<FaultEvent> = fault_logs.iter().flat_map(FaultLog::snapshot).collect();
    events.sort_unstable();
    Ok(RoundOutput {
        sessions,
        part_results,
        events,
    })
}

/// Outcome of a multi-round campaign (see [`run_campaign`]).
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// One fleet summary per verification round, in order.
    pub rounds: Vec<FleetSummary>,
    /// All screened reports from accepted work across rounds, deduplicated
    /// and sorted by input.
    pub reports: Vec<ScreenReport>,
    /// Whether every sub-domain ended up verified within the round budget.
    pub complete: bool,
}

impl CampaignSummary {
    /// Total `f` evaluations burned across all participants and rounds —
    /// the "wasted cycles" metric that makes cheating expensive for the
    /// *grid*, not just risky for the cheater.
    #[must_use]
    pub fn total_participant_f_evals(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| &r.members)
            .map(|m| m.outcome.participant_costs.f_evals)
            .sum()
    }
}

/// Runs a verification campaign to completion: every share rejected in a
/// round is reassigned — to the *trusted* pool (`fallback`) — in the next
/// round, until everything is verified or `max_rounds` is exhausted.
///
/// This is the operational loop the paper implies: detection is only
/// useful because the supervisor can discard and re-run tainted shares.
///
/// # Errors
///
/// Propagates protocol errors; also rejects an empty fleet (via
/// [`run_fleet`]) or `max_rounds == 0`.
pub fn run_campaign<H, T, S, B, F>(
    task: &T,
    screener: &S,
    domain: Domain,
    fleet: &[B],
    fallback: &F,
    config: &FleetConfig,
    max_rounds: usize,
) -> Result<CampaignSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
    F: WorkerBehaviour,
{
    if max_rounds == 0 {
        return Err(SchemeError::InvalidConfig {
            reason: "campaign needs at least one round",
        });
    }
    let mut rounds = Vec::new();
    let mut reports: Vec<ScreenReport> = Vec::new();

    // Round 1: the whole fleet over the whole domain.
    let first = run_fleet::<H, T, S, B>(task, screener, domain, fleet, config)?;
    let mut pending = first.shares_to_reassign();
    reports.extend(first.reports.iter().cloned());
    rounds.push(first);

    // Later rounds: tainted shares go to the fallback worker, one share
    // per fleet slot (re-splitting is unnecessary — shares are already
    // participant-sized).
    let mut round = 1;
    while !pending.is_empty() && round < max_rounds {
        round += 1;
        let mut next_pending = Vec::new();
        for share in pending {
            let cfg = FleetConfig {
                seed: config
                    .seed
                    .wrapping_add(round as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ..*config
            };
            let summary = run_fleet::<H, T, S, F>(
                task,
                screener,
                share,
                core::slice::from_ref(fallback),
                &cfg,
            )?;
            reports.extend(summary.reports.iter().cloned());
            next_pending.extend(summary.shares_to_reassign());
            rounds.push(summary);
        }
        pending = next_pending;
    }

    reports.sort_by_key(|r| r.input);
    reports.dedup();
    Ok(CampaignSummary {
        complete: pending.is_empty(),
        rounds,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_hash::Sha256;
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(scheme: FleetScheme) -> FleetConfig {
        FleetConfig {
            scheme,
            storage: ParticipantStorage::Full,
            seed: 99,
            parallelism: Parallelism::default(),
        }
    }

    #[test]
    fn honest_fleet_accepted_and_reports_merged() {
        let task = PasswordSearch::with_hidden_password(3, 700);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 4];
        let summary = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 1024),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 12,
                report_audit: 0,
            }),
        )
        .unwrap();
        assert_eq!(summary.accepted(), 4);
        assert_eq!(summary.rejected(), 0);
        assert_eq!(summary.reports.len(), 1);
        assert_eq!(summary.reports[0].input, 700);
        assert!(summary.shares_to_reassign().is_empty());
    }

    #[test]
    fn mixed_fleet_isolates_the_cheater() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let honest = HonestWorker;
        let cheater =
            SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(1), 5);
        let fleet: Vec<&dyn WorkerBehaviour> = vec![&honest, &cheater, &honest];
        let summary = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 300),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 20,
                report_audit: 0,
            }),
        )
        .unwrap();
        assert_eq!(summary.accepted(), 2);
        assert_eq!(summary.rejected(), 1);
        assert!(!summary.members[1].outcome.accepted);
        // The cheater's share (middle third) must be reassigned.
        assert_eq!(summary.shares_to_reassign(), vec![Domain::new(100, 100)]);
    }

    #[test]
    fn ni_fleet_works() {
        let task = PasswordSearch::with_hidden_password(5, 2);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 3];
        let summary = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 96),
            &fleet,
            &config(FleetScheme::NiCbs {
                samples: 8,
                g_iterations: 2,
                report_audit: 0,
            }),
        )
        .unwrap();
        assert_eq!(summary.accepted(), 3);
        // Every member paid its own g-derivation.
        for m in &summary.members {
            assert_eq!(m.outcome.participant_costs.g_evals, 16);
        }
    }

    #[test]
    fn empty_fleet_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let fleet: Vec<HonestWorker> = Vec::new();
        let err = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 16),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 4,
                report_audit: 0,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn oversubscribed_fleet_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 10];
        let err = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 4),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 1,
                report_audit: 0,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn campaign_recovers_cheated_shares() {
        // The password hides in the cheater's share; round 1 rejects it,
        // round 2 recovers it via the trusted fallback.
        let task = PasswordSearch::with_hidden_password(3, 150);
        let screener = task.match_screener();
        let honest = HonestWorker;
        let cheater =
            SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(1), 5);
        // 3 shares of 100: the password (input 150) is in share 1 — the cheater's.
        let fleet: Vec<&dyn WorkerBehaviour> = vec![&honest, &cheater, &honest];
        let summary = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 300),
            &fleet,
            &HonestWorker,
            &FleetConfig {
                scheme: FleetScheme::Cbs {
                    samples: 25,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 8,
                parallelism: Parallelism::default(),
            },
            4,
        )
        .unwrap();
        assert!(summary.complete);
        assert_eq!(summary.rounds.len(), 2);
        assert!(!summary.rounds[0].members[1].outcome.accepted);
        assert_eq!(summary.reports.len(), 1);
        assert_eq!(summary.reports[0].input, 150);
        // The grid burned extra cycles re-running the tainted share.
        assert!(summary.total_participant_f_evals() > 300);
    }

    #[test]
    fn campaign_all_honest_finishes_in_one_round() {
        let task = PasswordSearch::with_hidden_password(3, 10);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 2];
        let summary = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &fleet,
            &HonestWorker,
            &FleetConfig {
                scheme: FleetScheme::NiCbs {
                    samples: 10,
                    g_iterations: 1,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 2,
                parallelism: Parallelism::default(),
            },
            3,
        )
        .unwrap();
        assert!(summary.complete);
        assert_eq!(summary.rounds.len(), 1);
    }

    #[test]
    fn campaign_reports_incompleteness_when_budget_exhausted() {
        // Fallback is itself a cheater: the campaign can never finish.
        let task = PasswordSearch::with_hidden_password(3, 10);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.1, CheatSelection::Scattered, ZeroGuesser::new(2), 7);
        let fleet: Vec<&dyn WorkerBehaviour> = vec![&cheater];
        let summary = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 100),
            &fleet,
            &cheater,
            &FleetConfig {
                scheme: FleetScheme::Cbs {
                    samples: 20,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 4,
                parallelism: Parallelism::default(),
            },
            3,
        )
        .unwrap();
        assert!(!summary.complete);
        assert_eq!(summary.rounds.len(), 3);
    }

    #[test]
    fn campaign_zero_rounds_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker];
        let err = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 16),
            &fleet,
            &HonestWorker,
            &FleetConfig {
                scheme: FleetScheme::Cbs {
                    samples: 2,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 1,
                parallelism: Parallelism::default(),
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn deterministic_per_seed() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.9, CheatSelection::Scattered, ZeroGuesser::new(1), 5);
        let fleet = vec![&cheater, &cheater];
        let run = |seed| {
            let summary = run_fleet::<Sha256, _, _, _>(
                &task,
                &screener,
                Domain::new(0, 200),
                &fleet,
                &FleetConfig {
                    scheme: FleetScheme::Cbs {
                        samples: 6,
                        report_audit: 0,
                    },
                    storage: ParticipantStorage::Full,
                    seed,
                    parallelism: Parallelism::default(),
                },
            )
            .unwrap();
            summary
                .members
                .iter()
                .map(|m| m.outcome.accepted)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn brokered_session_failure_returns_instead_of_hanging() {
        // A session that dies in start() (samples == 0) leaves its
        // participant with no assignment; the broker pump must still wind
        // down and the call must return the configuration error promptly
        // rather than deadlocking on the orphaned participant.
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 2];
        for transport in [FleetTransport::Direct, FleetTransport::Brokered] {
            let err = run_fleet_over::<Sha256, _, _, _>(
                &task,
                &screener,
                Domain::new(0, 32),
                &fleet,
                &FleetConfig {
                    scheme: FleetScheme::Cbs {
                        samples: 0,
                        report_audit: 0,
                    },
                    storage: ParticipantStorage::Full,
                    seed: 1,
                    parallelism: Parallelism::default(),
                },
                transport,
            )
            .unwrap_err();
            assert!(
                matches!(err, SchemeError::InvalidConfig { .. }),
                "{transport:?}: {err}"
            );
        }
    }
}
