//! Fleet orchestration: verify many participants over a partitioned domain.
//!
//! The paper's model (Section 2.1) has the supervisor partition `X` into
//! per-participant sub-domains. This module runs one verification round
//! against every participant — in parallel, one thread pair per
//! participant — and aggregates verdicts, screened reports and costs into
//! a fleet-level summary. It is the entry point a downstream project
//! (a SETI@home, a screening grid) would actually call.

use crate::scheme::cbs::{run_cbs_with, CbsConfig};
use crate::scheme::ni_cbs::{run_ni_cbs_with, NiCbsConfig};
use crate::{ParticipantStorage, RoundOutcome, SchemeError, Verdict};
use ugc_grid::WorkerBehaviour;
use ugc_hash::HashFunction;
use ugc_merkle::Parallelism;
use ugc_task::{ComputeTask, Domain, ScreenReport, Screener};

/// Which commitment-based scheme the fleet round uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetScheme {
    /// Interactive CBS (Section 3).
    Cbs {
        /// Samples per participant.
        samples: usize,
        /// Report-audit size (0 disables).
        report_audit: usize,
    },
    /// Non-interactive CBS (Section 4).
    NiCbs {
        /// Samples per participant.
        samples: usize,
        /// Hardness `k` of the sample generator `g = H^k`.
        g_iterations: u64,
        /// Report-audit size (0 disables).
        report_audit: usize,
    },
}

/// Configuration of a fleet verification round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// The scheme and its parameters.
    pub scheme: FleetScheme,
    /// Participant tree storage mode.
    pub storage: ParticipantStorage,
    /// Base seed; participant `i` gets a derived seed.
    pub seed: u64,
    /// Per-participant tree-build parallelism
    /// ([`Parallelism::default()`] = one thread per available core).
    /// Results are bit-identical at any setting; only wall-clock time
    /// changes.
    pub parallelism: Parallelism,
}

/// One participant's slice of the fleet round.
#[derive(Debug, Clone)]
pub struct FleetMember {
    /// Index of the participant within the fleet.
    pub participant: usize,
    /// The sub-domain it was assigned.
    pub share: Domain,
    /// The full outcome of its verification round.
    pub outcome: RoundOutcome,
}

/// Aggregated result of a fleet round.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Per-participant outcomes, in assignment order.
    pub members: Vec<FleetMember>,
    /// Screened reports from *accepted* participants only, in input order.
    pub reports: Vec<ScreenReport>,
}

impl FleetSummary {
    /// Participants whose work was accepted.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.members.iter().filter(|m| m.outcome.accepted).count()
    }

    /// Participants caught cheating (or otherwise rejected).
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.members.len() - self.accepted()
    }

    /// The sub-domains that must be reassigned (their results cannot be
    /// trusted).
    #[must_use]
    pub fn shares_to_reassign(&self) -> Vec<Domain> {
        self.members
            .iter()
            .filter(|m| !m.outcome.accepted)
            .map(|m| m.share)
            .collect()
    }

    /// Total bytes received by the supervisor across the fleet.
    #[must_use]
    pub fn supervisor_bytes_received(&self) -> u64 {
        self.members
            .iter()
            .map(|m| m.outcome.supervisor_link.bytes_received)
            .sum()
    }

    /// The verdict for participant `i`.
    #[must_use]
    pub fn verdict_of(&self, i: usize) -> Option<&Verdict> {
        self.members.get(i).map(|m| &m.outcome.verdict)
    }
}

/// Runs one verification round against every behaviour in `fleet`, each on
/// its own share of `domain` (shares differ in size by at most one input).
///
/// Rounds run concurrently — one supervisor/participant thread pair per
/// fleet member — and deterministically per `config.seed`.
///
/// # Errors
///
/// The first protocol error encountered (cheating is *not* an error; it
/// shows up as a rejected member).
pub fn run_fleet<H, T, S, B>(
    task: &T,
    screener: &S,
    domain: Domain,
    fleet: &[B],
    config: &FleetConfig,
) -> Result<FleetSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
{
    if fleet.is_empty() {
        return Err(SchemeError::InvalidConfig {
            reason: "fleet must contain at least one participant",
        });
    }
    let shares: Vec<Domain> = domain
        .split(fleet.len() as u64)
        .map_err(|_| SchemeError::InvalidConfig {
            reason: "domain cannot be partitioned over the fleet",
        })?
        .into_iter()
        .collect();
    if shares.len() != fleet.len() {
        return Err(SchemeError::InvalidConfig {
            reason: "more participants than domain inputs",
        });
    }

    let results: Vec<Result<RoundOutcome, SchemeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .zip(&shares)
            .enumerate()
            .map(|(i, (behaviour, share))| {
                let seed = config
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64);
                let cfg = *config;
                scope.spawn(move || match cfg.scheme {
                    FleetScheme::Cbs {
                        samples,
                        report_audit,
                    } => run_cbs_with::<H, _, _, _>(
                        task,
                        screener,
                        *share,
                        behaviour,
                        cfg.storage,
                        cfg.parallelism,
                        &CbsConfig {
                            task_id: i as u64,
                            samples,
                            seed,
                            report_audit,
                        },
                    ),
                    FleetScheme::NiCbs {
                        samples,
                        g_iterations,
                        report_audit,
                    } => run_ni_cbs_with::<H, _, _, _>(
                        task,
                        screener,
                        *share,
                        behaviour,
                        cfg.storage,
                        cfg.parallelism,
                        &NiCbsConfig {
                            task_id: i as u64,
                            samples,
                            g_iterations,
                            report_audit,
                            audit_seed: seed,
                        },
                    ),
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet round panicked"))
            .collect()
    });

    let mut members = Vec::with_capacity(results.len());
    for (i, (result, share)) in results.into_iter().zip(shares).enumerate() {
        members.push(FleetMember {
            participant: i,
            share,
            outcome: result?,
        });
    }
    let mut reports: Vec<ScreenReport> = members
        .iter()
        .filter(|m| m.outcome.accepted)
        .flat_map(|m| m.outcome.reports.iter().cloned())
        .collect();
    reports.sort_by_key(|r| r.input);
    Ok(FleetSummary { members, reports })
}

/// Outcome of a multi-round campaign (see [`run_campaign`]).
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// One fleet summary per verification round, in order.
    pub rounds: Vec<FleetSummary>,
    /// All screened reports from accepted work across rounds, deduplicated
    /// and sorted by input.
    pub reports: Vec<ScreenReport>,
    /// Whether every sub-domain ended up verified within the round budget.
    pub complete: bool,
}

impl CampaignSummary {
    /// Total `f` evaluations burned across all participants and rounds —
    /// the "wasted cycles" metric that makes cheating expensive for the
    /// *grid*, not just risky for the cheater.
    #[must_use]
    pub fn total_participant_f_evals(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| &r.members)
            .map(|m| m.outcome.participant_costs.f_evals)
            .sum()
    }
}

/// Runs a verification campaign to completion: every share rejected in a
/// round is reassigned — to the *trusted* pool (`fallback`) — in the next
/// round, until everything is verified or `max_rounds` is exhausted.
///
/// This is the operational loop the paper implies: detection is only
/// useful because the supervisor can discard and re-run tainted shares.
///
/// # Errors
///
/// Propagates protocol errors; also rejects an empty fleet (via
/// [`run_fleet`]) or `max_rounds == 0`.
pub fn run_campaign<H, T, S, B, F>(
    task: &T,
    screener: &S,
    domain: Domain,
    fleet: &[B],
    fallback: &F,
    config: &FleetConfig,
    max_rounds: usize,
) -> Result<CampaignSummary, SchemeError>
where
    H: HashFunction,
    T: ComputeTask,
    S: Screener,
    B: WorkerBehaviour,
    F: WorkerBehaviour,
{
    if max_rounds == 0 {
        return Err(SchemeError::InvalidConfig {
            reason: "campaign needs at least one round",
        });
    }
    let mut rounds = Vec::new();
    let mut reports: Vec<ScreenReport> = Vec::new();

    // Round 1: the whole fleet over the whole domain.
    let first = run_fleet::<H, T, S, B>(task, screener, domain, fleet, config)?;
    let mut pending = first.shares_to_reassign();
    reports.extend(first.reports.iter().cloned());
    rounds.push(first);

    // Later rounds: tainted shares go to the fallback worker, one share
    // per fleet slot (re-splitting is unnecessary — shares are already
    // participant-sized).
    let mut round = 1;
    while !pending.is_empty() && round < max_rounds {
        round += 1;
        let mut next_pending = Vec::new();
        for share in pending {
            let cfg = FleetConfig {
                seed: config
                    .seed
                    .wrapping_add(round as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ..*config
            };
            let summary = run_fleet::<H, T, S, F>(
                task,
                screener,
                share,
                core::slice::from_ref(fallback),
                &cfg,
            )?;
            reports.extend(summary.reports.iter().cloned());
            next_pending.extend(summary.shares_to_reassign());
            rounds.push(summary);
        }
        pending = next_pending;
    }

    reports.sort_by_key(|r| r.input);
    reports.dedup();
    Ok(CampaignSummary {
        complete: pending.is_empty(),
        rounds,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugc_grid::{CheatSelection, HonestWorker, SemiHonestCheater};
    use ugc_hash::Sha256;
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::ZeroGuesser;

    fn config(scheme: FleetScheme) -> FleetConfig {
        FleetConfig {
            scheme,
            storage: ParticipantStorage::Full,
            seed: 99,
            parallelism: Parallelism::default(),
        }
    }

    #[test]
    fn honest_fleet_accepted_and_reports_merged() {
        let task = PasswordSearch::with_hidden_password(3, 700);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 4];
        let summary = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 1024),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 12,
                report_audit: 0,
            }),
        )
        .unwrap();
        assert_eq!(summary.accepted(), 4);
        assert_eq!(summary.rejected(), 0);
        assert_eq!(summary.reports.len(), 1);
        assert_eq!(summary.reports[0].input, 700);
        assert!(summary.shares_to_reassign().is_empty());
    }

    #[test]
    fn mixed_fleet_isolates_the_cheater() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let honest = HonestWorker;
        let cheater =
            SemiHonestCheater::new(0.3, CheatSelection::Scattered, ZeroGuesser::new(1), 5);
        let fleet: Vec<&dyn WorkerBehaviour> = vec![&honest, &cheater, &honest];
        let summary = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 300),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 20,
                report_audit: 0,
            }),
        )
        .unwrap();
        assert_eq!(summary.accepted(), 2);
        assert_eq!(summary.rejected(), 1);
        assert!(!summary.members[1].outcome.accepted);
        // The cheater's share (middle third) must be reassigned.
        assert_eq!(summary.shares_to_reassign(), vec![Domain::new(100, 100)]);
    }

    #[test]
    fn ni_fleet_works() {
        let task = PasswordSearch::with_hidden_password(5, 2);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 3];
        let summary = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 96),
            &fleet,
            &config(FleetScheme::NiCbs {
                samples: 8,
                g_iterations: 2,
                report_audit: 0,
            }),
        )
        .unwrap();
        assert_eq!(summary.accepted(), 3);
        // Every member paid its own g-derivation.
        for m in &summary.members {
            assert_eq!(m.outcome.participant_costs.g_evals, 16);
        }
    }

    #[test]
    fn empty_fleet_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let fleet: Vec<HonestWorker> = Vec::new();
        let err = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 16),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 4,
                report_audit: 0,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn oversubscribed_fleet_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 10];
        let err = run_fleet::<Sha256, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 4),
            &fleet,
            &config(FleetScheme::Cbs {
                samples: 1,
                report_audit: 0,
            }),
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn campaign_recovers_cheated_shares() {
        // The password hides in the cheater's share; round 1 rejects it,
        // round 2 recovers it via the trusted fallback.
        let task = PasswordSearch::with_hidden_password(3, 150);
        let screener = task.match_screener();
        let honest = HonestWorker;
        let cheater =
            SemiHonestCheater::new(0.2, CheatSelection::Scattered, ZeroGuesser::new(1), 5);
        // 3 shares of 100: the password (input 150) is in share 1 — the cheater's.
        let fleet: Vec<&dyn WorkerBehaviour> = vec![&honest, &cheater, &honest];
        let summary = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 300),
            &fleet,
            &HonestWorker,
            &FleetConfig {
                scheme: FleetScheme::Cbs {
                    samples: 25,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 8,
                parallelism: Parallelism::default(),
            },
            4,
        )
        .unwrap();
        assert!(summary.complete);
        assert_eq!(summary.rounds.len(), 2);
        assert!(!summary.rounds[0].members[1].outcome.accepted);
        assert_eq!(summary.reports.len(), 1);
        assert_eq!(summary.reports[0].input, 150);
        // The grid burned extra cycles re-running the tainted share.
        assert!(summary.total_participant_f_evals() > 300);
    }

    #[test]
    fn campaign_all_honest_finishes_in_one_round() {
        let task = PasswordSearch::with_hidden_password(3, 10);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker; 2];
        let summary = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 64),
            &fleet,
            &HonestWorker,
            &FleetConfig {
                scheme: FleetScheme::NiCbs {
                    samples: 10,
                    g_iterations: 1,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 2,
                parallelism: Parallelism::default(),
            },
            3,
        )
        .unwrap();
        assert!(summary.complete);
        assert_eq!(summary.rounds.len(), 1);
    }

    #[test]
    fn campaign_reports_incompleteness_when_budget_exhausted() {
        // Fallback is itself a cheater: the campaign can never finish.
        let task = PasswordSearch::with_hidden_password(3, 10);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.1, CheatSelection::Scattered, ZeroGuesser::new(2), 7);
        let fleet: Vec<&dyn WorkerBehaviour> = vec![&cheater];
        let summary = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 100),
            &fleet,
            &cheater,
            &FleetConfig {
                scheme: FleetScheme::Cbs {
                    samples: 20,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 4,
                parallelism: Parallelism::default(),
            },
            3,
        )
        .unwrap();
        assert!(!summary.complete);
        assert_eq!(summary.rounds.len(), 3);
    }

    #[test]
    fn campaign_zero_rounds_rejected() {
        let task = PasswordSearch::with_hidden_password(1, 1);
        let screener = task.match_screener();
        let fleet = vec![HonestWorker];
        let err = run_campaign::<Sha256, _, _, _, _>(
            &task,
            &screener,
            Domain::new(0, 16),
            &fleet,
            &HonestWorker,
            &FleetConfig {
                scheme: FleetScheme::Cbs {
                    samples: 2,
                    report_audit: 0,
                },
                storage: ParticipantStorage::Full,
                seed: 1,
                parallelism: Parallelism::default(),
            },
            0,
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
    }

    #[test]
    fn deterministic_per_seed() {
        let task = PasswordSearch::with_hidden_password(3, 1);
        let screener = task.match_screener();
        let cheater =
            SemiHonestCheater::new(0.9, CheatSelection::Scattered, ZeroGuesser::new(1), 5);
        let fleet = vec![&cheater, &cheater];
        let run = |seed| {
            let summary = run_fleet::<Sha256, _, _, _>(
                &task,
                &screener,
                Domain::new(0, 200),
                &fleet,
                &FleetConfig {
                    scheme: FleetScheme::Cbs {
                        samples: 6,
                        report_audit: 0,
                    },
                    storage: ParticipantStorage::Full,
                    seed,
                    parallelism: Parallelism::default(),
                },
            )
            .unwrap();
            summary
                .members
                .iter()
                .map(|m| m.outcome.accepted)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }
}
