//! The session engine: one event loop multiplexing many concurrent
//! verification sessions over a grid transport.
//!
//! The engine owns a set of supervisor-side
//! [`SupervisorSession`] state machines
//! and a routing table from wire ids to `(session, slot)`. Its event loop
//! is transport-agnostic:
//!
//! ```text
//!            ┌────────────── SessionEngine ──────────────┐
//!            │ session 0 (cbs)    session 1 (ni-cbs)  …  │
//!            │    ▲ │                ▲ │                 │
//!            │    │ ▼  route by session id / task id     │
//!            └────┼─┼───────────────┼─┼─────────────────-┘
//!                 │ ▼               │ ▼
//!        DirectTransport (one endpoint per participant)
//!        — or — a single Endpoint into a Broker that fans out
//! ```
//!
//! The same loop therefore drives in-memory fleets (per-participant
//! duplex links), the relayed [`Broker`](ugc_grid::Broker) deployment of
//! Section 4, and mixed-scheme campaigns — the orchestrator's
//! [`run_fleet`](crate::run_fleet)/[`run_mixed_fleet`](crate::run_mixed_fleet)
//! are wrappers over this engine.
//!
//! Per-session traffic is accounted from encoded frame sizes (wire length
//! plus the transport's frame header), which is byte-identical to what a
//! dedicated [`Endpoint`] would have counted — so
//! engine-multiplexed byte counts match the legacy one-link-per-round
//! paths bit for bit.

use crate::journal::CampaignRecorder;
use crate::session::{SessionOutcome, SupervisorSession};
use crate::SchemeError;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use ugc_grid::{Backoff, Endpoint, GridError, GridLink, LinkStats, Message, FRAME_HEADER_BYTES};

/// What the engine's transport delivered on one receive.
#[derive(Debug)]
pub enum EngineEvent {
    /// A protocol message arrived; the `u64` is its charged frame size
    /// (wire bytes + header), so the engine can attribute per-session
    /// traffic without re-encoding.
    Message(Message, u64),
    /// A peer hung up; the listed routing ids can never receive again.
    PeerClosed(Vec<u64>),
}

/// A transport the engine can multiplex sessions over.
pub trait EngineTransport {
    /// Sends `msg` towards the peer that owns `routing_id`, returning the
    /// bytes charged (encoded frame plus header).
    ///
    /// # Errors
    ///
    /// Transport failures (e.g. the peer disconnected).
    fn send(&mut self, routing_id: u64, msg: &Message) -> Result<u64, GridError>;

    /// Blocks until the next inbound event.
    ///
    /// # Errors
    ///
    /// [`GridError::Disconnected`] once *nothing* can ever arrive again.
    fn recv(&mut self) -> Result<EngineEvent, GridError>;

    /// Polls for an inbound event without blocking; `Ok(None)` when the
    /// transport is momentarily idle. An engine enforcing per-session
    /// deadlines polls through this instead of [`recv`](Self::recv).
    ///
    /// # Errors
    ///
    /// As [`recv`](Self::recv).
    fn try_recv(&mut self) -> Result<Option<EngineEvent>, GridError>;
}

/// Any shared [`GridLink`] is a valid engine transport: a relay on the
/// far side (the in-process [`Broker`](ugc_grid::Broker), or the
/// `ugc broker serve` process over a [`TcpLink`](ugc_grid::TcpLink))
/// routes by session/task id and NACKs tasks whose participant hung up
/// with [`Message::Gone`]. The routing id is ignored on send — routing
/// is the relay's job.
impl<L: GridLink> EngineTransport for L {
    fn send(&mut self, _routing_id: u64, msg: &Message) -> Result<u64, GridError> {
        self.send_counted(msg)
    }

    fn recv(&mut self) -> Result<EngineEvent, GridError> {
        self.recv_counted()
            .map(|(msg, charged)| EngineEvent::Message(msg, charged))
    }

    fn try_recv(&mut self) -> Result<Option<EngineEvent>, GridError> {
        match self.try_recv_counted() {
            Ok((msg, charged)) => Ok(Some(EngineEvent::Message(msg, charged))),
            Err(GridError::Empty) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Direct in-memory transport: one [`Endpoint`] per participant, polled
/// fairly (rotating cursor) so no chatty participant starves another.
#[derive(Debug, Default)]
pub struct DirectTransport {
    endpoints: Vec<Endpoint>,
    ids: Vec<Vec<u64>>,
    routes: HashMap<u64, usize>,
    open: Vec<bool>,
    cursor: usize,
}

impl DirectTransport {
    /// An empty transport; add endpoints with
    /// [`add_endpoint`](Self::add_endpoint).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a participant endpoint serving the given routing ids.
    pub fn add_endpoint(&mut self, endpoint: Endpoint, ids: impl IntoIterator<Item = u64>) {
        let idx = self.endpoints.len();
        let ids: Vec<u64> = ids.into_iter().collect();
        for &id in &ids {
            self.routes.insert(id, idx);
        }
        self.ids.push(ids);
        self.endpoints.push(endpoint);
        self.open.push(true);
    }
}

impl DirectTransport {
    /// One fair sweep over the open endpoints: `Ok(None)` if every open
    /// endpoint was momentarily empty, [`GridError::Disconnected`] once
    /// none remain open.
    fn sweep(&mut self) -> Result<Option<EngineEvent>, GridError> {
        let n = self.endpoints.len();
        let mut saw_open = false;
        for probe in 0..n {
            let idx = (self.cursor + probe) % n;
            if !self.open[idx] {
                continue;
            }
            match self.endpoints[idx].try_recv_counted() {
                Ok((msg, charged)) => {
                    self.cursor = (idx + 1) % n;
                    return Ok(Some(EngineEvent::Message(msg, charged)));
                }
                Err(GridError::Empty) => saw_open = true,
                Err(GridError::Disconnected) => {
                    self.open[idx] = false;
                    return Ok(Some(EngineEvent::PeerClosed(self.ids[idx].clone())));
                }
                Err(e) => return Err(e),
            }
        }
        if saw_open {
            Ok(None)
        } else {
            Err(GridError::Disconnected)
        }
    }
}

impl EngineTransport for DirectTransport {
    fn send(&mut self, routing_id: u64, msg: &Message) -> Result<u64, GridError> {
        let idx = *self.routes.get(&routing_id).ok_or(GridError::Empty)?;
        match self.endpoints[idx].send_counted(msg) {
            Ok(charged) => Ok(charged),
            // A dead participant loses the message downstream — exactly
            // what the brokered transport does (the supervisor's send to
            // the broker succeeds; the relay fails silently). Charging
            // the nominal frame keeps byte accounting identical whether
            // the peer died a microsecond before or after this send —
            // the session's fate is decided by the PeerClosed event, not
            // by this race.
            Err(GridError::Disconnected) => Ok(msg.wire_len() + FRAME_HEADER_BYTES),
            Err(e) => Err(e),
        }
    }

    fn recv(&mut self) -> Result<EngineEvent, GridError> {
        let mut backoff = Backoff::new();
        loop {
            match self.sweep()? {
                Some(event) => return Ok(event),
                // The participants are deep in compute (tree builds take
                // seconds at scale): escalate from spinning to coarse
                // sleeps instead of burning the core.
                None => backoff.wait(),
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<EngineEvent>, GridError> {
        self.sweep()
    }
}

enum SessionState {
    Active,
    Done(SessionOutcome),
    Failed(SchemeError),
}

struct EngineSlot<'a> {
    session: Box<dyn SupervisorSession + 'a>,
    /// Routing id per participant slot (task id, or a fresh session id in
    /// envelope mode).
    routing_ids: Vec<u64>,
    link: LinkStats,
    state: SessionState,
}

/// Per-session result of an engine run.
#[derive(Debug)]
pub struct SessionResult {
    /// The verdict and reports, or the protocol error that killed this
    /// session (other sessions keep running).
    pub outcome: Result<SessionOutcome, SchemeError>,
    /// Supervisor-side traffic attributed to this session, byte-identical
    /// to what a dedicated endpoint would have counted.
    pub link: LinkStats,
}

/// An event loop multiplexing many supervisor sessions over one transport.
///
/// Sessions are registered with [`add_session`](Self::add_session) and run
/// to completion by [`run`](Self::run). Routing uses each slot's task id
/// directly (zero wire overhead); [`enveloped`](Self::enveloped) mode
/// instead assigns fresh session ids and wraps every message in a
/// [`Message::Session`] envelope, which lets sessions with *colliding*
/// task ids share one transport.
pub struct SessionEngine<'a> {
    slots: Vec<EngineSlot<'a>>,
    routes: HashMap<u64, (usize, usize)>,
    envelope: bool,
    next_session_id: u64,
    deadline: Option<Duration>,
    recorder: Option<&'a CampaignRecorder>,
}

impl Default for SessionEngine<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> SessionEngine<'a> {
    /// An engine routing by task id (no envelope overhead; task ids must
    /// be unique across sessions).
    #[must_use]
    pub fn new() -> Self {
        SessionEngine {
            slots: Vec::new(),
            routes: HashMap::new(),
            envelope: false,
            next_session_id: 0,
            deadline: None,
            recorder: None,
        }
    }

    /// Fails any session that sees no inbound activity for `deadline` with
    /// [`SchemeError::TimedOut`] instead of waiting forever — the survival
    /// guarantee that lets the engine run under chaos (dropped messages,
    /// stalled participants) without hanging. The clock is per session and
    /// resets on every message that session receives — but a computing
    /// participant is silent, so size the deadline to bound the longest
    /// legitimate compute-then-reply gap (share evaluation plus tree
    /// build), not just network latency. With a deadline set the engine
    /// polls the transport (with exponential idle backoff) instead of
    /// blocking.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// An engine that wraps every message in a [`Message::Session`]
    /// envelope keyed by engine-assigned session ids, so sessions whose
    /// task ids collide can still share the transport.
    #[must_use]
    pub fn enveloped() -> Self {
        SessionEngine {
            envelope: true,
            ..Self::new()
        }
    }

    /// Journals every settled session through `recorder` when the engine
    /// finishes: one `Settled` record per slot, in registration order, so
    /// a resumed campaign can replay outcomes without re-running sessions.
    pub(crate) fn with_recorder(&mut self, recorder: &'a CampaignRecorder) {
        self.recorder = Some(recorder);
    }

    /// Registers a session whose slots answer to `task_ids`, returning the
    /// routing ids the transport must deliver (equal to `task_ids` unless
    /// the engine is enveloped).
    ///
    /// # Errors
    ///
    /// [`SchemeError::InvalidConfig`] if a routing id collides with an
    /// already-registered session (use [`SessionEngine::enveloped`]).
    pub fn add_session(
        &mut self,
        session: Box<dyn SupervisorSession + 'a>,
        task_ids: Vec<u64>,
    ) -> Result<Vec<u64>, SchemeError> {
        let routing_ids: Vec<u64> = if self.envelope {
            task_ids
                .iter()
                .map(|_| {
                    let id = self.next_session_id;
                    self.next_session_id += 1;
                    id
                })
                .collect()
        } else {
            task_ids
        };
        let index = self.slots.len();
        // Validate before mutating: a rejected registration must leave the
        // routing table exactly as it was.
        for (slot, id) in routing_ids.iter().enumerate() {
            if self.routes.contains_key(id) || routing_ids[..slot].contains(id) {
                return Err(SchemeError::InvalidConfig {
                    reason: "routing id already registered with the engine",
                });
            }
        }
        for (slot, &id) in routing_ids.iter().enumerate() {
            self.routes.insert(id, (index, slot));
        }
        self.slots.push(EngineSlot {
            session,
            routing_ids: routing_ids.clone(),
            link: LinkStats::default(),
            state: SessionState::Active,
        });
        Ok(routing_ids)
    }

    /// Number of registered sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.slots.len()
    }

    fn active(&self) -> bool {
        self.slots
            .iter()
            .any(|s| matches!(s.state, SessionState::Active))
    }

    /// Handles peer-closure notices for the given routing ids: each
    /// still-active session is asked (via
    /// [`SupervisorSession::on_peer_gone`]) whether it can finish
    /// without that peer. A session that cannot is failed with
    /// [`GridError::Disconnected`]; one that can (a multi-peer session
    /// whose dead slot already delivered) keeps running — the decision
    /// is the session's, never the race between the death notice and
    /// another slot's mail.
    fn fail_routes(&mut self, ids: &[u64]) {
        for id in ids {
            if let Some(&(index, peer)) = self.routes.get(id) {
                let slot = &mut self.slots[index];
                if matches!(slot.state, SessionState::Active) {
                    match slot.session.on_peer_gone(peer) {
                        Ok(()) => {
                            if let Some(outcome) = slot.session.take_outcome() {
                                slot.state = SessionState::Done(outcome);
                            }
                        }
                        Err(e) => slot.state = SessionState::Failed(e),
                    }
                }
            }
        }
    }

    /// Polls the transport until an event arrives or every active session
    /// has exceeded its inactivity deadline. Sessions that expire are
    /// failed with [`SchemeError::TimedOut`] in place; once none remain
    /// active the sentinel [`GridError::Empty`] is returned (the run loop
    /// re-checks its condition and exits).
    fn poll_with_deadline<T: EngineTransport>(
        &mut self,
        transport: &mut T,
        deadline: Duration,
        last_activity: &[Instant],
    ) -> Result<EngineEvent, GridError> {
        let mut backoff = Backoff::new();
        loop {
            match transport.try_recv() {
                Ok(Some(event)) => return Ok(event),
                Ok(None) => {
                    // ugc-lint: allow(wall-clock): liveness escape hatch — deadlines only fire when a peer is already silent, never on the replayed happy path
                    let now = Instant::now();
                    for (slot, last) in self.slots.iter_mut().zip(last_activity) {
                        if matches!(slot.state, SessionState::Active)
                            && now.duration_since(*last) >= deadline
                        {
                            slot.state = SessionState::Failed(SchemeError::TimedOut);
                        }
                    }
                    if !self.active() {
                        return Err(GridError::Empty);
                    }
                    backoff.wait();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one session's outbound batch, charging its link stats.
    fn send_outbound<T: EngineTransport>(
        transport: &mut T,
        envelope: bool,
        slot: &mut EngineSlot<'a>,
        outs: Vec<(usize, Message)>,
    ) -> Result<(), SchemeError> {
        for (peer, msg) in outs {
            let routing_id = *slot
                .routing_ids
                .get(peer)
                .ok_or(SchemeError::InvalidConfig {
                    reason: "session addressed a slot it does not own",
                })?;
            let msg = if envelope {
                Message::in_session(routing_id, msg)
            } else {
                msg
            };
            slot.link.bytes_sent += transport.send(routing_id, &msg)?;
            slot.link.messages_sent += 1;
        }
        Ok(())
    }

    /// Runs every registered session to completion over `transport`,
    /// returning per-session outcomes in registration order.
    ///
    /// A session that raises a protocol error is marked failed and the
    /// rest keep running; a transport-wide failure fails every session
    /// still active.
    ///
    /// # Errors
    ///
    /// Never fails as a whole — errors are reported per session — except
    /// when a session panics the underlying invariants (not expected).
    pub fn run<T: EngineTransport>(mut self, transport: &mut T) -> Vec<SessionResult> {
        // Open every session: emit its starting messages.
        for index in 0..self.slots.len() {
            let slot = &mut self.slots[index];
            let result = slot
                .session
                .start()
                .and_then(|outs| Self::send_outbound(transport, self.envelope, slot, outs));
            match result {
                // A fire-and-forget session may already be complete.
                Ok(()) => {
                    if let Some(outcome) = slot.session.take_outcome() {
                        slot.state = SessionState::Done(outcome);
                    }
                }
                Err(e) => slot.state = SessionState::Failed(e),
            }
        }

        // ugc-lint: allow(wall-clock): liveness escape hatch — seeds the per-slot deadline baselines, not any semantic state
        let mut last_activity: Vec<Instant> = vec![Instant::now(); self.slots.len()];
        while self.active() {
            let polled = match self.deadline {
                None => transport.recv(),
                Some(deadline) => self.poll_with_deadline(transport, deadline, &last_activity),
            };
            let event = match polled {
                Ok(event) => event,
                // The sentinel from the deadline poll: every remaining
                // session just timed out, so the `while` condition ends
                // the loop.
                Err(GridError::Empty) => continue,
                Err(e) => {
                    // Nothing can arrive any more: every session still
                    // waiting is dead.
                    for slot in &mut self.slots {
                        if matches!(slot.state, SessionState::Active) {
                            slot.state = SessionState::Failed(SchemeError::Grid(e.clone()));
                        }
                    }
                    break;
                }
            };
            let (msg, charged) = match event {
                // A broker NACK is a peer-closure notice, not session mail.
                EngineEvent::Message(Message::Gone { task_id }, _) => {
                    self.fail_routes(&[task_id]);
                    continue;
                }
                EngineEvent::Message(msg, charged) => (msg, charged),
                EngineEvent::PeerClosed(ids) => {
                    self.fail_routes(&ids);
                    continue;
                }
            };
            let routing_id = msg.session_id();
            let Some(&(index, peer)) = self.routes.get(&routing_id) else {
                // Mail for a session this engine never registered: drop it,
                // as a broker would drop mail for an unknown host.
                continue;
            };
            let slot = &mut self.slots[index];
            if !matches!(slot.state, SessionState::Active) {
                continue; // late mail for a finished/failed session
            }
            let (_, payload) = msg.into_payload();
            if slot.session.is_stale(peer, &payload) {
                // A redundant redelivery (e.g. a fault-injected duplicate
                // of an upload already in hand): dropped uncharged, so
                // the session's byte accounting cannot depend on whether
                // the copy raced the session's completion.
                continue;
            }
            // ugc-lint: allow(wall-clock): liveness escape hatch — refreshes the slot's deadline baseline, not any semantic state
            last_activity[index] = Instant::now();
            slot.link.bytes_received += charged;
            slot.link.messages_received += 1;
            let result = slot
                .session
                .on_message(peer, payload)
                .and_then(|outs| Self::send_outbound(transport, self.envelope, slot, outs));
            match result {
                Ok(()) => {
                    if let Some(outcome) = slot.session.take_outcome() {
                        slot.state = SessionState::Done(outcome);
                    }
                }
                Err(e) => slot.state = SessionState::Failed(e),
            }
        }

        let recorder = self.recorder;
        let results: Vec<SessionResult> = self
            .slots
            .into_iter()
            .map(|slot| SessionResult {
                outcome: match slot.state {
                    SessionState::Done(outcome) => Ok(outcome),
                    SessionState::Failed(e) => Err(e),
                    SessionState::Active => Err(SchemeError::Grid(GridError::Disconnected)),
                },
                link: slot.link,
            })
            .collect();
        // Journal-before-effect: every settled session is durable before
        // the orchestrator acts on it. Registration order == roster order.
        if let Some(recorder) = recorder {
            for (index, result) in results.iter().enumerate() {
                recorder.settled(index, result);
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::cbs::CbsScheme;
    use crate::session::{
        drive_participant, ParticipantContext, SupervisorContext, VerificationScheme,
    };
    use crate::{ParticipantStorage, Verdict};
    use ugc_grid::{duplex, CostLedger, HonestWorker};
    use ugc_hash::Sha256;
    use ugc_merkle::{LaneWidth, Parallelism};
    use ugc_task::workloads::PasswordSearch;
    use ugc_task::Domain;

    #[test]
    fn two_sessions_multiplex_over_direct_links() {
        let task = PasswordSearch::with_hidden_password(2, 5);
        let screener = task.match_screener();
        let scheme = CbsScheme {
            samples: 8,
            seed: 3,
            report_audit: 0,
        };
        let mut engine = SessionEngine::new();
        let mut transport = DirectTransport::new();
        let mut part_eps = Vec::new();
        for task_id in 0..2u64 {
            let (sup_ep, part_ep) = duplex();
            let ids = engine
                .add_session(
                    VerificationScheme::<Sha256>::supervisor_session(
                        &scheme,
                        SupervisorContext {
                            task: &task,
                            screener: &screener,
                            domain: Domain::new(task_id * 32, 32),
                            task_ids: vec![task_id],
                            ledger: CostLedger::new(),
                        },
                    ),
                    vec![task_id],
                )
                .unwrap();
            transport.add_endpoint(sup_ep, ids);
            part_eps.push(part_ep);
        }
        let results = std::thread::scope(|scope| {
            let (task, screener, scheme) = (&task, &screener, &scheme);
            for part_ep in &part_eps {
                scope.spawn(move || {
                    let mut session = VerificationScheme::<Sha256>::participant_session(
                        scheme,
                        ParticipantContext {
                            task,
                            screener,
                            behaviour: &HonestWorker,
                            storage: ParticipantStorage::Full,
                            parallelism: Parallelism::serial(),
                            lanes: LaneWidth::default(),
                            ledger: CostLedger::new(),
                        },
                    );
                    drive_participant(part_ep, session.as_mut()).unwrap()
                });
            }
            engine.run(&mut transport)
        });
        assert_eq!(results.len(), 2);
        for result in &results {
            let outcome = result.outcome.as_ref().unwrap();
            assert_eq!(outcome.verdict, Verdict::Accepted);
            assert!(result.link.bytes_received > 0);
        }
    }

    #[test]
    fn brokered_dead_participant_fails_only_its_session() {
        // Participant 0 reads its assignment and silently dies; the broker
        // NACKs its task with Message::Gone, the engine fails that session
        // with Disconnected, and session 1 still completes normally.
        use ugc_grid::{Broker, GridError, Message};
        let task = PasswordSearch::with_hidden_password(2, 5);
        let screener = task.match_screener();
        let scheme = CbsScheme {
            samples: 6,
            seed: 1,
            report_audit: 0,
        };
        let mut engine = SessionEngine::new();
        for task_id in 0..2u64 {
            let session = VerificationScheme::<Sha256>::supervisor_session(
                &scheme,
                SupervisorContext {
                    task: &task,
                    screener: &screener,
                    domain: Domain::new(task_id * 32, 32),
                    task_ids: vec![task_id],
                    ledger: CostLedger::new(),
                },
            );
            engine.add_session(session, vec![task_id]).unwrap();
        }
        let (dying_broker_side, dying_part) = duplex();
        let (healthy_broker_side, healthy_part) = duplex();
        let (mut sup_transport, broker_up) = duplex();
        let broker = Broker::new(broker_up, vec![dying_broker_side, healthy_broker_side]);

        let results = std::thread::scope(|scope| {
            scope.spawn(move || broker.pump_until_closed());
            scope.spawn(move || {
                let Message::Assign(_) = dying_part.recv().unwrap() else {
                    panic!("expected assignment");
                };
                // …and dies without replying (endpoint dropped here).
            });
            let (task, screener, scheme) = (&task, &screener, &scheme);
            scope.spawn(move || {
                let mut session = VerificationScheme::<Sha256>::participant_session(
                    scheme,
                    ParticipantContext {
                        task,
                        screener,
                        behaviour: &HonestWorker,
                        storage: ParticipantStorage::Full,
                        parallelism: Parallelism::serial(),
                        lanes: LaneWidth::default(),
                        ledger: CostLedger::new(),
                    },
                );
                drive_participant(&healthy_part, session.as_mut()).unwrap();
            });
            let results = engine.run(&mut sup_transport);
            drop(sup_transport);
            results
        });
        assert!(matches!(
            results[0].outcome,
            Err(crate::SchemeError::Grid(GridError::Disconnected))
        ));
        let healthy = results[1].outcome.as_ref().unwrap();
        assert_eq!(healthy.verdict, Verdict::Accepted);
    }

    #[test]
    fn duplicate_task_ids_need_envelopes() {
        let task = PasswordSearch::with_hidden_password(2, 5);
        let screener = task.match_screener();
        let scheme = CbsScheme {
            samples: 4,
            seed: 3,
            report_audit: 0,
        };
        let make_session = || {
            VerificationScheme::<Sha256>::supervisor_session(
                &scheme,
                SupervisorContext {
                    task: &task,
                    screener: &screener,
                    domain: Domain::new(0, 16),
                    task_ids: vec![1],
                    ledger: CostLedger::new(),
                },
            )
        };
        let mut plain = SessionEngine::new();
        plain.add_session(make_session(), vec![1]).unwrap();
        assert!(matches!(
            plain.add_session(make_session(), vec![1]),
            Err(SchemeError::InvalidConfig { .. })
        ));
        assert!(matches!(
            plain.add_session(make_session(), vec![2, 2]),
            Err(SchemeError::InvalidConfig { .. })
        ));
        let mut enveloped = SessionEngine::enveloped();
        let first = enveloped.add_session(make_session(), vec![1]).unwrap();
        let second = enveloped.add_session(make_session(), vec![1]).unwrap();
        assert_ne!(first, second, "envelope mode must mint fresh ids");

        // A rejected registration must leave the engine fully usable: the
        // surviving session still routes (pre-fix this panicked — the
        // collision had overwritten session 0's route with a dangling
        // slot index before erroring).
        let mut transport = DirectTransport::new();
        let (sup_ep, part_ep) = duplex();
        transport.add_endpoint(sup_ep, [1]);
        let results = std::thread::scope(|scope| {
            let (task, screener, scheme) = (&task, &screener, &scheme);
            scope.spawn(move || {
                let mut session = VerificationScheme::<Sha256>::participant_session(
                    scheme,
                    ParticipantContext {
                        task,
                        screener,
                        behaviour: &HonestWorker,
                        storage: ParticipantStorage::Full,
                        parallelism: Parallelism::serial(),
                        lanes: LaneWidth::default(),
                        ledger: CostLedger::new(),
                    },
                );
                drive_participant(&part_ep, session.as_mut()).unwrap();
            });
            plain.run(&mut transport)
        });
        assert!(results[0].outcome.as_ref().unwrap().verdict.is_accepted());
    }

    #[test]
    fn session_completing_at_start_does_not_block_the_engine() {
        // A fire-and-forget supervisor session (complete after start, no
        // inbound traffic expected) must be collected immediately instead
        // of leaving the engine waiting for a reply that never comes.
        struct FireAndForget {
            outcome: Option<SessionOutcome>,
        }
        impl crate::session::SupervisorSession for FireAndForget {
            fn start(&mut self) -> Result<Vec<crate::session::Outbound>, SchemeError> {
                Ok(Vec::new())
            }
            fn on_message(
                &mut self,
                _slot: usize,
                _msg: Message,
            ) -> Result<Vec<crate::session::Outbound>, SchemeError> {
                unreachable!("never fed");
            }
            fn take_outcome(&mut self) -> Option<SessionOutcome> {
                self.outcome.take()
            }
        }
        let mut engine = SessionEngine::new();
        engine
            .add_session(
                Box::new(FireAndForget {
                    outcome: Some(SessionOutcome {
                        verdict: Verdict::Accepted,
                        reports: Vec::new(),
                    }),
                }),
                vec![9],
            )
            .unwrap();
        let mut transport = DirectTransport::new();
        let (sup_ep, _part_ep) = duplex(); // stays open: recv would block
        transport.add_endpoint(sup_ep, [9]);
        let results = engine.run(&mut transport);
        assert!(results[0].outcome.as_ref().unwrap().verdict.is_accepted());
    }
}
