//! The cross-process grid: `ugc broker serve`, `ugc participant join`
//! and `ugc fleet --connect`, over the length-framed TCP wire protocol.
//!
//! Three processes cooperate, mirroring the paper's GRACE deployment
//! exactly — the supervisor talks only to the broker, never to
//! participants:
//!
//! * [`GridServer`] (`ugc broker serve`) accepts one supervisor and N
//!   participant connections, completes the versioned handshake, then
//!   runs the *same* [`Broker`] relay the in-process brokered transport
//!   uses — over [`TcpLink`]s instead of in-memory endpoints — plus a
//!   control-plane sweep forwarding participant [`SlotReport`]s up.
//! * [`join`] (`ugc participant join`) dials in, learns the campaign
//!   from the handshake [`Welcome`], expands the identical
//!   [`CampaignPlan`] the supervisor runs, and serves every slot the
//!   broker round-robins to it, demultiplexing purely by task id.
//! * [`run_remote_campaign`] wires all three together over loopback in
//!   one process — the harness `tests/wire_equivalence.rs` and the
//!   `wire_overhead` benchmark use to prove a cross-process campaign's
//!   digest is bit-identical to the in-process run.
//!
//! Reconnect semantics: the server keeps accepting after the roster is
//! complete; a late joiner becomes a fresh round-robin target. Tasks
//! orphaned by a died participant were already NACKed to the supervisor
//! with [`Message::Gone`](ugc_grid::Message) — they are *not* replayed
//! to the newcomer, the supervisor's retry round reassigns them.

use crate::campaign::{CampaignPlan, FleetParams};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;
use ugc_core::{
    run_mixed_fleet_on, FleetSummary, ParticipantSession, RemoteGridBackend, SlotReport,
    TransportKind,
};
use ugc_grid::tcp::{handshake_participant, handshake_supervisor};
use ugc_grid::wire::{recv_hello, send_welcome, Hello, Welcome, ROLE_PARTICIPANT, ROLE_SUPERVISOR};
use ugc_grid::{
    Backoff, Broker, ControlHandle, CostLedger, GridError, GridLink, RelayStats, TcpLink,
};

/// How many times [`connect`] retries a refused dial before giving up.
/// With [`CONNECT_PAUSE`] between attempts this tolerates ~10 s of the
/// server not being up yet — `ugc participant join` is routinely started
/// before `ugc broker serve` finishes binding.
const CONNECT_ATTEMPTS: u32 = 40;
/// Pause between dial attempts (a fixed schedule, not wall-clock-read
/// based: retry behaviour is execution-only and never enters a digest).
const CONNECT_PAUSE: Duration = Duration::from_millis(250);
/// How long the server waits for a connection's [`Hello`] before
/// dropping it (a liveness guard against port scanners and half-open
/// dials wedging the roster phase).
const HELLO_PATIENCE: Duration = Duration::from_secs(10);

/// Dials `addr`, retrying while the server is still coming up.
///
/// # Errors
///
/// The last I/O error once the retry schedule is exhausted.
pub fn connect(addr: &str) -> Result<TcpStream, String> {
    let mut last: Option<io::Error> = None;
    for _ in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(CONNECT_PAUSE);
            }
        }
    }
    Err(match last {
        Some(e) => format!("could not connect to {addr}: {e}"),
        None => format!("could not connect to {addr}"),
    })
}

/// What a completed [`GridServer::run`] relayed.
#[derive(Debug, Clone, Copy)]
pub struct ServeOutcome {
    /// Message counts the broker relayed in each direction.
    pub relay: RelayStats,
    /// Participant processes welcomed over the server's lifetime
    /// (roster plus late joiners/reconnects).
    pub joined: usize,
}

/// What a completed [`join`] served.
#[derive(Debug, Clone, Copy)]
pub struct JoinOutcome {
    /// This process's index among the broker's participants.
    pub peer_index: u32,
    /// Participant slots this process ran to completion (reported via
    /// [`SlotReport`] control frames).
    pub slots_served: u64,
}

/// Receives a connection's [`Hello`] under [`HELLO_PATIENCE`], leaving
/// the stream in blocking mode afterwards (the [`TcpLink`] reader thread
/// needs plain blocking reads).
fn accept_hello(mut stream: TcpStream) -> Result<(TcpStream, Hello), GridError> {
    stream
        .set_read_timeout(Some(HELLO_PATIENCE))
        .map_err(|_| GridError::Disconnected)?;
    let hello = recv_hello(&mut stream)?;
    stream
        .set_read_timeout(None)
        .map_err(|_| GridError::Disconnected)?;
    Ok((stream, hello))
}

/// The `ugc broker serve` process: a [`Broker`] relay over real
/// sockets.
///
/// Two-phase construction — [`bind`](Self::bind) then
/// [`run`](Self::run) — so a caller binding port 0 can read the
/// OS-assigned address from [`local_addr`](Self::local_addr) before the
/// server blocks.
pub struct GridServer {
    listener: TcpListener,
    participants: usize,
}

impl GridServer {
    /// Binds the listen address. `participants` is the number of
    /// participant *processes* the roster waits for — independent of
    /// the campaign's fleet size, since the broker round-robins any
    /// number of slots across however many processes joined (the
    /// paper's "the GRB hides the participants": digests never depend
    /// on which process hosts which slot).
    ///
    /// # Errors
    ///
    /// An unbindable address, or a zero participant count.
    pub fn bind(listen: &str, participants: usize) -> Result<Self, String> {
        if participants == 0 {
            return Err("a grid needs at least one participant process".into());
        }
        let listener =
            TcpListener::bind(listen).map_err(|e| format!("cannot listen on {listen}: {e}"))?;
        Ok(GridServer {
            listener,
            participants,
        })
    }

    /// The bound address (the OS-assigned one when binding port 0).
    ///
    /// # Errors
    ///
    /// The socket is gone.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("listener address unavailable: {e}"))
    }

    /// Assembles the grid and relays the campaign to completion:
    /// accepts until the roster (N participants + 1 supervisor) is
    /// complete, welcomes everyone — participants receive the
    /// supervisor's campaign params, so the grid assembling is also the
    /// campaign reaching every process — then pumps the broker until
    /// the supervisor hangs up and all queued traffic is drained.
    /// Late connections during the campaign are handshaken and added as
    /// fresh round-robin targets (reconnect-with-NACK).
    ///
    /// # Errors
    ///
    /// Accept/handshake failures during roster assembly (the pump phase
    /// instead drops misbehaving connections, as a relay must).
    pub fn run(self) -> Result<ServeOutcome, String> {
        // Roster phase: blocking accept until one supervisor and
        // `participants` participant processes have said hello.
        let mut part_streams: Vec<TcpStream> = Vec::new();
        let mut supervisor: Option<(TcpStream, Vec<u8>)> = None;
        while part_streams.len() < self.participants || supervisor.is_none() {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| format!("accept failed: {e}"))?;
            match accept_hello(stream) {
                Ok((stream, hello)) if hello.role == ROLE_PARTICIPANT => {
                    if part_streams.len() < self.participants {
                        part_streams.push(stream);
                    }
                    // A surplus participant waits in the accept queue of
                    // the pump phase? No — it already said hello, so it
                    // is simply dropped; it may redial and join late.
                }
                Ok((stream, hello)) if hello.role == ROLE_SUPERVISOR && supervisor.is_none() => {
                    supervisor = Some((stream, hello.params));
                }
                // A second supervisor, an unknown role, or a handshake
                // failure: drop the connection and keep assembling.
                Ok(_) | Err(_) => {}
            }
        }
        let (mut sup_stream, sup_params) =
            supervisor.expect("roster loop exits only with a supervisor");
        let peer_count = u32::try_from(self.participants)
            .map_err(|_| "participant count exceeds the wire's u32".to_string())?;

        // Welcome phase: participants first (each learns the campaign
        // params), supervisor last — its welcome doubles as "the grid is
        // assembled, start assigning".
        let mut part_links: Vec<TcpLink> = Vec::new();
        let mut part_controls: Vec<ControlHandle> = Vec::new();
        for (i, mut stream) in part_streams.into_iter().enumerate() {
            let welcome = Welcome {
                peer_index: u32::try_from(i).unwrap_or(u32::MAX),
                peer_count,
                params: sup_params.clone(),
            };
            send_welcome(&mut stream, &welcome)
                .map_err(|e| format!("participant {i} welcome failed: {e}"))?;
            let link = TcpLink::from_stream(stream);
            part_controls.push(link.control_handle());
            part_links.push(link);
        }
        send_welcome(
            &mut sup_stream,
            &Welcome {
                peer_index: 0,
                peer_count,
                params: Vec::new(),
            },
        )
        .map_err(|e| format!("supervisor welcome failed: {e}"))?;
        let sup_link = TcpLink::from_stream(sup_stream);
        let sup_control = sup_link.control_handle();
        let mut broker = Broker::new(sup_link, part_links);
        let mut joined = self.participants;

        // Pump phase: the in-process `pump_until_closed` loop (same exit
        // protocol — see that method's comment) with two additions only a
        // cross-process relay needs: a control-plane sweep forwarding
        // participant SlotReports up, and a non-blocking accept so late
        // joiners/reconnects become fresh round-robin targets.
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener mode change failed: {e}"))?;
        let mut outward_drained = false;
        let mut inward_dead = false;
        let mut backoff = Backoff::new();
        loop {
            let mut progress = false;
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if let Ok((mut stream, hello)) = accept_hello(stream) {
                        if hello.role == ROLE_PARTICIPANT {
                            let welcome = Welcome {
                                peer_index: u32::try_from(broker.participant_count())
                                    .unwrap_or(u32::MAX),
                                peer_count,
                                params: sup_params.clone(),
                            };
                            if send_welcome(&mut stream, &welcome).is_ok() {
                                let link = TcpLink::from_stream(stream);
                                part_controls.push(link.control_handle());
                                broker.add_participant(link);
                                joined += 1;
                                progress = true;
                            }
                        }
                        // A mid-campaign supervisor dial is dropped: the
                        // campaign already has one.
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                // Transient accept errors are not the relay's problem.
                Err(_) => {}
            }
            if !outward_drained {
                match broker.try_relay_outward() {
                    Ok(true) => progress = true,
                    Ok(false) => {}
                    Err(GridError::Disconnected) => outward_drained = true,
                    // Unroutable mail is dropped, not fatal.
                    Err(_) => progress = true,
                }
            }
            if !inward_dead {
                match broker.try_relay_inward() {
                    Ok(Some(_)) => progress = true,
                    Ok(None) => {}
                    Err(GridError::Disconnected) => inward_dead = true,
                    Err(_) => progress = true,
                }
            }
            // Control sweep: slot reports ride the uncharged control
            // plane, exactly like the in-process ledger clones ride
            // outside the message flow.
            for control in &part_controls {
                while let Ok(Some(payload)) = control.try_recv() {
                    let _ = sup_control.send(payload);
                    progress = true;
                }
            }
            if progress {
                backoff.reset();
            } else if outward_drained {
                // Supervisor gone and its queue drained: returning drops
                // every participant link, which is what tells the join
                // processes the campaign is over.
                return Ok(ServeOutcome {
                    relay: broker.stats(),
                    joined,
                });
            } else {
                backoff.wait();
            }
        }
    }
}

/// The `ugc participant join` process body: dials the broker, expands
/// the campaign from the handshake, and serves every slot the broker
/// hands this process until the campaign ends (the broker dropping the
/// link).
///
/// # Errors
///
/// Connection/handshake failure, a params blob this build cannot read,
/// or a transport error other than the end-of-campaign disconnect.
pub fn join(addr: &str) -> Result<JoinOutcome, String> {
    let stream = connect(addr)?;
    let (link, welcome) =
        handshake_participant(stream).map_err(|e| format!("handshake with {addr} failed: {e}"))?;
    let params = FleetParams::decode(&welcome.params)?;
    let plan = CampaignPlan::new(params)?;
    let slots_served = serve_slots(&link, &plan)?;
    Ok(JoinOutcome {
        peer_index: welcome.peer_index,
        slots_served,
    })
}

/// Runs participant sessions for every slot the broker routes to this
/// link, demultiplexing by task id (the orchestrator numbers slots with
/// one global counter, so a message's task id *is* its global slot).
/// Each completed slot's costs and outcome go back as a [`SlotReport`]
/// control frame; its ledger is fresh per slot, so the report is a pure
/// delta the supervisor sums into the member's ledger — the same
/// additive counters an in-process member's slots share directly.
fn serve_slots(link: &TcpLink, plan: &CampaignPlan) -> Result<u64, String> {
    let control = link.control_handle();
    // BTreeMap, not HashMap: slot teardown order must never depend on
    // unspecified iteration order (the ugc-lint unordered-iter rule).
    let mut live: BTreeMap<u64, (Box<dyn ParticipantSession + '_>, CostLedger)> = BTreeMap::new();
    let mut served = 0u64;
    loop {
        let msg = match link.recv() {
            Ok(msg) => msg,
            // The broker dropping the link is the normal end of campaign.
            Err(GridError::Disconnected) => break,
            Err(e) => return Err(format!("grid link failed: {e}")),
        };
        let slot = msg.task_id();
        if let std::collections::btree_map::Entry::Vacant(entry) = live.entry(slot) {
            let ledger = CostLedger::new();
            let session = plan.participant_session(slot, ledger.clone())?;
            entry.insert((session, ledger));
        }
        let (session, ledger) = live.get_mut(&slot).expect("inserted above");
        match session.on_message(msg) {
            Ok(replies) => {
                let mut peer_gone = false;
                for reply in replies {
                    match link.send(&reply) {
                        Ok(_) => {}
                        Err(GridError::Disconnected) => {
                            peer_gone = true;
                            break;
                        }
                        Err(e) => return Err(format!("grid link failed: {e}")),
                    }
                }
                if peer_gone {
                    break;
                }
                if let Some(accepted) = session.finished() {
                    let report = SlotReport {
                        slot,
                        costs: ledger.report(),
                        outcome: Ok(accepted),
                    };
                    // A send failure means the campaign tore down first;
                    // the exit path is the recv disconnect above.
                    let _ = control.send(report.encode());
                    live.remove(&slot);
                    served += 1;
                }
            }
            Err(e) => {
                let report = SlotReport {
                    slot,
                    costs: ledger.report(),
                    outcome: Err(e),
                };
                let _ = control.send(report.encode());
                live.remove(&slot);
                served += 1;
            }
        }
    }
    Ok(served)
}

/// Runs a full cross-process-shaped campaign over loopback TCP in one
/// process: a [`GridServer`] on port 0, `joiners` participant threads
/// running [`join`], and the supervisor inline on the calling thread
/// over a [`RemoteGridBackend`] — returning its [`FleetSummary`], whose
/// digest must be bit-identical to the in-process brokered run of the
/// same params.
///
/// # Errors
///
/// Any phase failing; chaos params are refused up front (the remote
/// backend cannot inject faults).
pub fn run_remote_campaign(params: &FleetParams, joiners: usize) -> Result<FleetSummary, String> {
    if params.chaos().is_some() {
        return Err(
            "a cross-process campaign cannot inject chaos: fault schedules are \
                    keyed by link id, and which process hosts which link is execution \
                    layout that digests must not depend on"
                .into(),
        );
    }
    let mut params = params.clone();
    params.transport = TransportKind::Remote;
    let server = GridServer::bind("127.0.0.1:0", joiners)?;
    let addr = server.local_addr()?.to_string();
    let serve = std::thread::spawn(move || server.run());
    let join_handles: Vec<_> = (0..joiners)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || join(&addr))
        })
        .collect();

    let plan = CampaignPlan::new(params.clone())?;
    let stream = connect(&addr)?;
    let (link, _welcome) =
        handshake_supervisor(stream, &params.encode()).map_err(|e| format!("handshake: {e}"))?;
    let mut backend = RemoteGridBackend::new(link);
    let members = plan.members();
    let summary = run_mixed_fleet_on(
        plan.task(),
        plan.screener(),
        plan.domain(),
        &members,
        &plan.mixed_config(None, 0, ugc_core::LaneWidth::default()),
        &mut backend,
    )
    .map_err(|e| e.to_string())?;

    // The supervisor link died with the backend's round; the serve pump
    // observes the hang-up, drains, and drops the participant links,
    // which ends every joiner.
    for (i, handle) in join_handles.into_iter().enumerate() {
        handle
            .join()
            .map_err(|_| format!("joiner {i} panicked"))?
            .map_err(|e| format!("joiner {i}: {e}"))?;
    }
    serve.join().map_err(|_| "server panicked".to_string())??;
    Ok(summary)
}
