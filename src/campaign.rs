//! The `ugc fleet` campaign, as data: parameters and the plan they
//! deterministically expand into.
//!
//! [`FleetParams`] is the versioned, codec-stable record of everything
//! that defines a fleet campaign — roster shape, workload size, scheme,
//! seed, transport, chaos. It travels in two places: the write-ahead
//! journal's header app blob (so `ugc fleet --resume` rebuilds the
//! identical campaign from the journal alone) and the wire handshake's
//! `Welcome` payload (so a `ugc participant join` process in another OS
//! process expands the *same* plan the supervisor runs — same task, same
//! derived scheme seeds, same cheater roster — which is what makes a
//! cross-process campaign's digest bit-identical to the in-process run).
//!
//! [`CampaignPlan`] is that expansion: the task, screener, behaviours
//! and per-member scheme instances, plus the slot arithmetic shared by
//! the supervisor (which numbers sessions) and a join process (which
//! demultiplexes them by task id).

use std::time::Duration;
use ugc_core::{
    FleetScheme, LaneWidth, MemberSpec, MixedFleetConfig, Parallelism, ParticipantContext,
    ParticipantSession, ParticipantStorage, TransportKind, VerificationScheme,
};
use ugc_grid::codec::{get_bytes, get_u64, put_bytes, put_u64};
use ugc_grid::runtime::FaultPlan;
use ugc_grid::{
    CheatSelection, CostLedger, GridError, HonestWorker, SemiHonestCheater, WorkerBehaviour,
};
use ugc_hash::Sha256;
use ugc_task::workloads::PasswordSearch;
use ugc_task::{Domain, MatchScreener, ZeroGuesser};

/// Version tag of the [`FleetParams`] codec layout (bump on any change).
/// Version 1 was the pre-transport layout with a bare `--broker` bool;
/// version 2 records the full [`TransportKind`].
pub const FLEET_PARAMS_VERSION: u64 = 2;

/// The campaign-defining `fleet` parameters. Journaled campaigns encode
/// these into the header's app blob, so `--resume` rebuilds the
/// identical campaign — task, roster, chaos plan, deadline, retry
/// budget — from the journal alone; `ugc broker serve` forwards them in
/// the handshake `Welcome`, so join processes expand the identical
/// plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetParams {
    /// Fleet size (members, not slots — double-check runs two slots per
    /// member).
    pub participants: u64,
    /// How many members (the first `cheaters` of the roster) run the
    /// semi-honest cheater behaviour.
    pub cheaters: u64,
    /// Domain size: inputs 0..n, split evenly across members.
    pub n: u64,
    /// Samples (CBS/NI-CBS/naive) or ringers per member.
    pub m: u64,
    /// Base seed; member `i` gets a derived scheme seed.
    pub seed: u64,
    /// Scheme name as the CLI spells it (`cbs`, `ni-cbs`, `naive`,
    /// `ringer`, `double-check`).
    pub scheme: String,
    /// How the fleet's messages move — the one transport-selection knob.
    pub transport: TransportKind,
    /// Whether the chaos plan adds participant crash/restart churn.
    pub churn: bool,
    /// Seeded fault injection on every participant link (`None` runs
    /// clean).
    pub chaos_seed: Option<u64>,
}

impl FleetParams {
    /// Encodes the params as a versioned blob (journal header app blob
    /// and handshake `Welcome` payload share this layout).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, FLEET_PARAMS_VERSION);
        put_u64(&mut buf, self.participants);
        put_u64(&mut buf, self.cheaters);
        put_u64(&mut buf, self.n);
        put_u64(&mut buf, self.m);
        put_u64(&mut buf, self.seed);
        put_bytes(&mut buf, self.scheme.as_bytes());
        put_u64(
            &mut buf,
            match self.transport {
                TransportKind::Direct => 0,
                TransportKind::Brokered => 1,
                TransportKind::Remote => 2,
            },
        );
        put_u64(&mut buf, u64::from(self.churn));
        match self.chaos_seed {
            None => put_u64(&mut buf, 0),
            Some(seed) => {
                put_u64(&mut buf, 1);
                put_u64(&mut buf, seed);
            }
        }
        buf
    }

    /// Decodes a blob written by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// A human-readable message on a truncated, trailing-bytes or
    /// foreign-version blob (version 1 journals predate the transport
    /// field and are refused rather than guessed at).
    pub fn decode(blob: &[u8]) -> Result<Self, String> {
        let err = |e: GridError| format!("campaign params blob: {e}");
        let mut buf = blob;
        let version = get_u64(&mut buf, "params blob version").map_err(err)?;
        if version != FLEET_PARAMS_VERSION {
            return Err(format!(
                "campaign params blob version {version} (this build reads \
                 {FLEET_PARAMS_VERSION}); re-run the campaign with this `ugc` build"
            ));
        }
        let participants = get_u64(&mut buf, "params participants").map_err(err)?;
        let cheaters = get_u64(&mut buf, "params cheaters").map_err(err)?;
        let n = get_u64(&mut buf, "params n").map_err(err)?;
        let m = get_u64(&mut buf, "params m").map_err(err)?;
        let seed = get_u64(&mut buf, "params seed").map_err(err)?;
        let scheme = String::from_utf8(get_bytes(&mut buf, "params scheme").map_err(err)?)
            .map_err(|_| "campaign params blob: scheme name is not UTF-8".to_string())?;
        let transport = match get_u64(&mut buf, "params transport").map_err(err)? {
            0 => TransportKind::Direct,
            1 => TransportKind::Brokered,
            2 => TransportKind::Remote,
            other => {
                return Err(format!(
                    "campaign params blob: unknown transport tag {other}"
                ))
            }
        };
        let churn = get_u64(&mut buf, "params churn flag").map_err(err)? != 0;
        let chaos_seed = match get_u64(&mut buf, "params chaos presence").map_err(err)? {
            0 => None,
            _ => Some(get_u64(&mut buf, "params chaos seed").map_err(err)?),
        };
        if !buf.is_empty() {
            return Err(format!(
                "campaign params blob has {} trailing byte(s)",
                buf.len()
            ));
        }
        Ok(FleetParams {
            participants,
            cheaters,
            n,
            m,
            seed,
            scheme,
            transport,
            churn,
            chaos_seed,
        })
    }

    /// The [`FleetScheme`] this campaign runs.
    ///
    /// # Errors
    ///
    /// An unknown scheme name.
    pub fn fleet_scheme(&self) -> Result<FleetScheme, String> {
        let m = usize::try_from(self.m)
            .map_err(|_| "sample count exceeds this platform's usize".to_string())?;
        Ok(match self.scheme.as_str() {
            "cbs" => FleetScheme::Cbs {
                samples: m,
                report_audit: 0,
            },
            "ni-cbs" => FleetScheme::NiCbs {
                samples: m,
                g_iterations: 1,
                report_audit: 0,
            },
            "naive" => FleetScheme::Naive { samples: m },
            "ringer" => FleetScheme::Ringer { ringers: m },
            "double-check" => FleetScheme::DoubleCheck,
            other => return Err(format!("unknown scheme {other:?}")),
        })
    }

    /// The seeded chaos plan, when the params ask for one.
    #[must_use]
    pub fn chaos(&self) -> Option<FaultPlan> {
        if self.chaos_seed.is_some() || self.churn {
            let mut plan = FaultPlan::chaos(self.chaos_seed.unwrap_or(1));
            if self.churn {
                plan = plan.with_churn(200);
            }
            Some(plan)
        } else {
            None
        }
    }
}

/// A [`FleetParams`] expansion: everything `run_mixed_fleet` needs on
/// the supervisor side, and everything a join process needs to build the
/// participant half of any slot. Both sides expanding the same params
/// must agree bit-for-bit — the derived scheme seeds, the cheater
/// roster, the hidden password — which is why the expansion lives here,
/// once, instead of being duplicated per process.
pub struct CampaignPlan {
    params: FleetParams,
    scheme: FleetScheme,
    task: PasswordSearch,
    screener: MatchScreener,
    honest: HonestWorker,
    cheater: SemiHonestCheater<ZeroGuesser>,
    schemes: Vec<Box<dyn VerificationScheme<Sha256>>>,
    participants: usize,
    cheaters: usize,
    domain: Domain,
}

impl CampaignPlan {
    /// Expands `params` into the runnable plan.
    ///
    /// # Errors
    ///
    /// Inconsistent params: more cheaters than participants, counts
    /// exceeding `usize`, an unknown scheme name, an empty domain.
    pub fn new(params: FleetParams) -> Result<Self, String> {
        if params.cheaters > params.participants {
            return Err("more cheaters than participants".into());
        }
        let participants = usize::try_from(params.participants)
            .map_err(|_| "participant count exceeds this platform's usize".to_string())?;
        let cheaters = usize::try_from(params.cheaters)
            .map_err(|_| "cheater count exceeds this platform's usize".to_string())?;
        let scheme = params.fleet_scheme()?;
        let seed = params.seed;
        let task = PasswordSearch::with_hidden_password(seed, params.n / 3);
        let screener = task.match_screener();
        let cheater = SemiHonestCheater::new(
            0.5,
            CheatSelection::Scattered,
            ZeroGuesser::new(seed ^ 0xf1ee),
            seed,
        );
        // One scheme instance per member, each with the derived seed
        // `run_fleet_over` would have used.
        let schemes: Vec<Box<dyn VerificationScheme<Sha256>>> = (0..participants)
            .map(|i| {
                scheme.instantiate::<Sha256>(
                    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(i as u64),
                )
            })
            .collect();
        let domain = Domain::try_new(0, params.n).map_err(|e| e.to_string())?;
        Ok(CampaignPlan {
            params,
            scheme,
            task,
            screener,
            honest: HonestWorker,
            cheater,
            schemes,
            participants,
            cheaters,
            domain,
        })
    }

    /// The params this plan expanded from.
    #[must_use]
    pub fn params(&self) -> &FleetParams {
        &self.params
    }

    /// The compute task every member evaluates.
    #[must_use]
    pub fn task(&self) -> &PasswordSearch {
        &self.task
    }

    /// The screener defining "results of interest".
    #[must_use]
    pub fn screener(&self) -> &MatchScreener {
        &self.screener
    }

    /// The full input domain (members get even shares of it).
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Participant slots per member (2 for double-check, 1 otherwise).
    #[must_use]
    pub fn slots_per_member(&self) -> usize {
        self.scheme.slots()
    }

    /// Total participant slots across the fleet — the global-slot (and
    /// task-id) space of a full-fleet round.
    #[must_use]
    pub fn total_slots(&self) -> usize {
        self.participants * self.slots_per_member()
    }

    /// The fleet roster: one [`MemberSpec`] per member, the first
    /// `cheaters` of them running the semi-honest cheater on every slot.
    #[must_use]
    pub fn members(&self) -> Vec<MemberSpec<'_, Sha256>> {
        self.schemes
            .iter()
            .enumerate()
            .map(|(i, scheme)| MemberSpec {
                scheme: scheme.as_ref(),
                behaviours: vec![
                    if i < self.cheaters {
                        &self.cheater as &dyn WorkerBehaviour
                    } else {
                        &self.honest as &dyn WorkerBehaviour
                    };
                    self.slots_per_member()
                ],
            })
            .collect()
    }

    /// The per-session inactivity deadline `ugc fleet` arms on chaotic
    /// runs: a hang-guard, not a pace-setter — generous enough that a
    /// member legitimately spending its whole share evaluating `f` is
    /// never killed mid-compute.
    #[must_use]
    pub fn deadline(&self) -> Duration {
        Duration::from_secs(10)
            + Duration::from_micros(
                2 * self
                    .params
                    .n
                    .div_ceil(u64::try_from(self.participants.max(1)).unwrap_or(1)),
            )
    }

    /// The [`MixedFleetConfig`] for this campaign. `workers`,
    /// `steal_seed` and `lanes` are execution-only knobs (scheduling and
    /// digest-kernel width, never digests); everything digest-relevant
    /// comes from the params.
    #[must_use]
    pub fn mixed_config(
        &self,
        workers: Option<usize>,
        steal_seed: u64,
        lanes: LaneWidth,
    ) -> MixedFleetConfig {
        let chaos = self.params.chaos();
        MixedFleetConfig {
            transport: self.params.transport,
            chaos,
            deadline: chaos.map(|_| self.deadline()),
            retries: if chaos.is_some() { 5 } else { 0 },
            storage: ParticipantStorage::Full,
            parallelism: Parallelism::default(),
            lanes,
            envelope: false,
            workers,
            steal_seed,
        }
    }

    /// Builds the participant-side state machine for one global slot —
    /// what a `ugc participant join` process runs when the broker hands
    /// it that slot's assignment. Task ids are the global slot counter
    /// (`run_fleet_round` numbers slots 0.. across the roster), so a
    /// join process can demultiplex purely by
    /// [`Message::task_id`](ugc_grid::Message::task_id).
    ///
    /// # Errors
    ///
    /// A slot outside this campaign's `0..total_slots()` space.
    pub fn participant_session(
        &self,
        global_slot: u64,
        ledger: CostLedger,
    ) -> Result<Box<dyn ParticipantSession + '_>, String> {
        let spm = u64::try_from(self.slots_per_member()).map_err(|_| "slot width".to_string())?;
        let member = usize::try_from(global_slot / spm)
            .ok()
            .filter(|m| *m < self.participants)
            .ok_or_else(|| {
                format!(
                    "slot {global_slot} is outside this campaign's {} slot(s)",
                    self.total_slots()
                )
            })?;
        let behaviour: &dyn WorkerBehaviour = if member < self.cheaters {
            &self.cheater
        } else {
            &self.honest
        };
        Ok(
            self.schemes[member].participant_session(ParticipantContext {
                task: &self.task,
                screener: &self.screener,
                behaviour,
                storage: ParticipantStorage::Full,
                parallelism: Parallelism::default(),
                // A join process picks its own lane width locally; the
                // knob never affects digests, so default is always safe.
                lanes: LaneWidth::default(),
                ledger,
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FleetParams {
        FleetParams {
            participants: 3,
            cheaters: 1,
            n: 300,
            m: 10,
            seed: 7,
            scheme: "cbs".into(),
            transport: TransportKind::Brokered,
            churn: false,
            chaos_seed: None,
        }
    }

    #[test]
    fn params_roundtrip_all_transports() {
        for transport in [
            TransportKind::Direct,
            TransportKind::Brokered,
            TransportKind::Remote,
        ] {
            for chaos_seed in [None, Some(9)] {
                let p = FleetParams {
                    transport,
                    chaos_seed,
                    churn: chaos_seed.is_some(),
                    ..params()
                };
                assert_eq!(FleetParams::decode(&p.encode()).unwrap(), p);
            }
        }
    }

    #[test]
    fn params_reject_foreign_version_and_trailing_bytes() {
        let mut v1 = Vec::new();
        put_u64(&mut v1, 1);
        let err = FleetParams::decode(&v1).unwrap_err();
        assert!(err.contains("version 1"), "unhelpful error: {err}");

        let mut blob = params().encode();
        blob.push(0);
        let err = FleetParams::decode(&blob).unwrap_err();
        assert!(err.contains("trailing"), "unhelpful error: {err}");
    }

    #[test]
    fn plan_rejects_bad_rosters() {
        let p = FleetParams {
            cheaters: 4,
            ..params()
        };
        let err = CampaignPlan::new(p).err().expect("bad roster");
        assert!(err.contains("cheaters"), "unhelpful error: {err}");
        let p = FleetParams {
            scheme: "quantum".into(),
            ..params()
        };
        let err = CampaignPlan::new(p).err().expect("bad scheme");
        assert!(err.contains("unknown scheme"), "unhelpful error: {err}");
    }

    #[test]
    fn double_check_doubles_the_slot_space() {
        let plan = CampaignPlan::new(FleetParams {
            scheme: "double-check".into(),
            ..params()
        })
        .unwrap();
        assert_eq!(plan.slots_per_member(), 2);
        assert_eq!(plan.total_slots(), 6);
        assert_eq!(plan.members()[0].behaviours.len(), 2);
        assert!(plan.participant_session(5, CostLedger::default()).is_ok());
        assert!(plan.participant_session(6, CostLedger::default()).is_err());
    }
}
