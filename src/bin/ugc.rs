//! `ugc` — command-line driver for the Uncheatable Grid Computing library.
//!
//! ```text
//! ugc sample-size --epsilon 1e-4 --r 0.5 --q 0.5     Eq. (3): required m
//! ugc detection   --r 0.5 --q 0 --m 14               Eq. (2): survival probability
//! ugc run         --scheme cbs --workload seti --n 1024 --m 25 --cheat 0.5
//! ugc fleet       --participants 4 --cheaters 1 --n 4096 --m 25
//! ugc lint        [--json]                           determinism audit
//! ```
//!
//! Argument parsing is hand-rolled (the library has no CLI dependencies);
//! every command prints a short, table-shaped report.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;
use ugc_journal::{verify_journal, CrashPlan};
use uncheatable_grid::campaign::{CampaignPlan, FleetParams};
use uncheatable_grid::core::analysis::{
    cheat_success_probability, detection_probability, required_sample_size,
};
use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::scheme::naive::{run_naive, NaiveConfig};
use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::scheme::ringer::{run_ringer, RingerConfig};
use uncheatable_grid::core::{
    run_durable_fleet, run_mixed_fleet, run_mixed_fleet_on, summary_digest, CampaignHeader,
    DurableCampaign, FleetSummary, FleetTransport, ParticipantStorage, RemoteGridBackend,
    RoundOutcome,
};
use uncheatable_grid::grid::runtime::GridScheduler;
use uncheatable_grid::grid::tcp::handshake_supervisor;
use uncheatable_grid::grid::{
    CheatSelection, FaultEvent, HonestWorker, SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::{LaneWidth, Sha256};
use uncheatable_grid::netgrid::{self, GridServer};
use uncheatable_grid::task::workloads::{
    DrugScreening, PasswordSearch, PrimalitySearch, SetiSignal,
};
use uncheatable_grid::task::{ComputeTask, Domain, ScreenReport, Screener, ZeroGuesser};

const USAGE: &str = "\
usage: ugc <command> [options]

commands:
  sample-size --epsilon <e> --r <r> --q <q>      Eq. (3): required sample count
  detection   --r <r> --q <q> --m <m>            Eq. (2): cheat-survival probability
  run         --scheme <cbs|ni-cbs|naive|ringer> --workload <password|seti|docking|primes>
              [--n <inputs>] [--m <samples>] [--cheat <ratio>] [--partial <level>] [--seed <s>]
  fleet       [--participants <k>] [--cheaters <c>] [--n <inputs>] [--m <samples>] [--seed <s>]
              [--scheme <cbs|ni-cbs|naive|ringer|double-check>]
              [--transport <direct|brokered>] [--workers <w>]
              [--steal-seed <s>] [--lanes <scalar|x4|x8>]
              [--threads <k>] [--chaos <seed>] [--churn]
              [--journal <path>] [--kill-at <r>] [--resume] [--verify-journal]
              [--connect <host:port>]
  broker serve --listen <host:port> [--participants <p>]
                                                  relay a cross-process campaign
  participant join <host:port>                    serve slots for a remote campaign
  lint        [--json] [--root <dir>]             audit the workspace for determinism hazards
  help                                            this message

The fleet runs every member as a concurrent session of one multiplexing
engine. --transport picks how its messages move: direct (the default;
one in-memory link per participant) or brokered (all sessions relayed
through a GRACE-style grid broker over a single supervisor link) —
verdicts and digests are identical either way. --broker is the
deprecated spelling of --transport brokered.

--connect <host:port> runs the same campaign over a real grid: a
`ugc broker serve` process relays between this supervisor and
`ugc participant join` processes over length-framed TCP, and the
printed digest is bit-identical to the in-process brokered run of the
same flags. A --connect campaign cannot inject chaos (--chaos/--churn:
fault schedules are keyed by in-process link identity) and cannot
journal (--journal/--resume/--kill-at are in-process flags).

--workers <w> multiplexes all participants as poll-driven state machines
over a fixed pool of w OS threads (w = 0 picks one per available core);
without it each participant gets its own OS thread. --steal-seed <s>
seeds the pool's work-stealing victim order — scheduling-only, any seed
reproduces the identical campaign. --lanes picks the message-parallel
digest kernel width for participant tree builds (x8 default; scalar
disables lane batching) — digests are bit-identical at any width, so
this is purely a speed knob. --threads sets the
participant count (same as --participants), --chaos <seed> injects
seeded message duplication/reordering/latency on every participant link,
and --churn adds participant crash/restart churn — failed sessions are
reassigned, and the whole campaign replays bit-identically from the
seed at any worker count.

--journal <path> makes the campaign crash-durable: every round is
written ahead to a checksummed journal before the supervisor acts on
it, so a killed run picks up with `ugc fleet --journal <path> --resume`
(the campaign flags live in the journal header, so --resume accepts
none) and finishes with verdicts, attempts, cost ledgers, fault log
and summary digest bit-identical to a run that was never interrupted.
--kill-at <r> crashes the supervisor deterministically at the r-th
campaign journal record (exit code 2), and --verify-journal checks a
finished journal's seal and prints its attestation digest.

lint statically audits every non-vendored .rs file for the hazards that
would break bit-identical replay (wall-clock reads, HashMap iteration,
ambient randomness, thread identity, truncating casts in codec paths,
unsafe code); it exits nonzero on any finding not suppressed by a
reasoned `ugc-lint: allow(<rule>): <reason>` annotation.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Hand-rolled `--key value` / `--flag` parser shared by every command:
/// each lookup marks the positions it consumed, and [`Args::finish`]
/// rejects anything left over, so a typo (`--particpants 3`) errors with
/// a usage hint and a nonzero exit instead of being silently ignored.
struct Args<'a> {
    argv: &'a [String],
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Args {
            used: vec![false; argv.len()],
            argv,
        }
    }

    /// The raw value following `key`: `Ok(None)` when the key is absent,
    /// an error when the key is present with nothing after it (a
    /// dangling `--key` must not silently fall back to the default).
    fn raw(&mut self, key: &str) -> Result<Option<&'a str>, String> {
        let Some(i) = self.argv.iter().position(|a| a == key) else {
            return Ok(None);
        };
        self.used[i] = true;
        let Some(value) = self.argv.get(i + 1) else {
            return Err(format!("{key} requires a value"));
        };
        self.used[i + 1] = true;
        Ok(Some(value))
    }

    /// `--key value`, parsed, or `None` when the key is absent.
    fn opt<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, String> {
        match self.raw(key)? {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {raw:?} for {key}")),
        }
    }

    /// `--key value`, parsed, with a default when the key is absent.
    fn value<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        Ok(self.opt(key)?.unwrap_or(default))
    }

    /// The first unconsumed non-flag argument (e.g. the address in
    /// `participant join <host:port>`), or `None`.
    fn positional(&mut self) -> Option<&'a str> {
        for (i, arg) in self.argv.iter().enumerate() {
            if !self.used[i] && !arg.starts_with("--") {
                self.used[i] = true;
                return Some(arg.as_str());
            }
        }
        None
    }

    /// A bare `--flag` (consumed if present).
    fn flag(&mut self, key: &str) -> bool {
        match self.argv.iter().position(|a| a == key) {
            Some(i) => {
                self.used[i] = true;
                true
            }
            None => false,
        }
    }

    /// Fails on any argument no lookup consumed (unknown flags, stray
    /// values, missing `--key` prefixes).
    fn finish(self) -> Result<(), String> {
        let unrecognized: Vec<&str> = self
            .argv
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !**used)
            .map(|(arg, _)| arg.as_str())
            .collect();
        if unrecognized.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unrecognized argument(s): {}",
                unrecognized.join(" ")
            ))
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("sample-size") => cmd_sample_size(Args::new(&args[1..])),
        Some("detection") => cmd_detection(Args::new(&args[1..])),
        Some("run") => cmd_run(Args::new(&args[1..])),
        Some("fleet") => cmd_fleet(Args::new(&args[1..])),
        Some("broker") => match args.get(1).map(String::as_str) {
            Some("serve") => cmd_broker_serve(Args::new(&args[2..])),
            other => Err(format!(
                "unknown broker subcommand {:?}; try `ugc broker serve`",
                other.unwrap_or("")
            )),
        },
        Some("participant") => match args.get(1).map(String::as_str) {
            Some("join") => cmd_participant_join(Args::new(&args[2..])),
            other => Err(format!(
                "unknown participant subcommand {:?}; try `ugc participant join <host:port>`",
                other.unwrap_or("")
            )),
        },
        Some("lint") => cmd_lint(Args::new(&args[1..])),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_lint(mut args: Args<'_>) -> Result<(), String> {
    let json = args.flag("--json");
    let root: Option<String> = args.opt("--root")?;
    args.finish()?;
    let root = match root {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            ugc_lint::find_workspace_root(&cwd).ok_or_else(|| {
                format!(
                    "no workspace Cargo.toml found above {}; pass --root <dir>",
                    cwd.display()
                )
            })?
        }
    };
    let report = ugc_lint::lint_workspace(&root).map_err(|e| format!("audit failed: {e}"))?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        Ok(())
    } else {
        // Findings are already printed in full; a usage dump would bury
        // them, so exit directly instead of returning Err.
        std::process::exit(1);
    }
}

fn cmd_sample_size(mut args: Args<'_>) -> Result<(), String> {
    let epsilon: f64 = args.value("--epsilon", 1e-4)?;
    let r: f64 = args.value("--r", 0.5)?;
    let q: f64 = args.value("--q", 0.0)?;
    args.finish()?;
    match required_sample_size(epsilon, r, q) {
        Some(m) => {
            println!("Eq. (3): m ≥ log ε / log(r + (1-r)q)");
            println!("r = {r}, q = {q}, ε = {epsilon:e}  →  m = {m}");
            println!(
                "check: Pr[cheat | m={m}] = {:.3e}",
                cheat_success_probability(r, q, m)
            );
        }
        None => println!("no finite m: a participant with r + (1-r)q = 1 is indistinguishable"),
    }
    Ok(())
}

fn cmd_detection(mut args: Args<'_>) -> Result<(), String> {
    let r: f64 = args.value("--r", 0.5)?;
    let q: f64 = args.value("--q", 0.0)?;
    let m: u64 = args.value("--m", 14)?;
    args.finish()?;
    println!("Eq. (2): Pr[cheat succeeds] = (r + (1-r)q)^m");
    println!(
        "r = {r}, q = {q}, m = {m}  →  survive {:.3e}, detect {:.6}",
        cheat_success_probability(r, q, m),
        detection_probability(r, q, m)
    );
    Ok(())
}

/// A boxed screener so one code path serves all workloads.
struct Workload {
    task: Box<dyn ComputeTask>,
    screener: Box<dyn Screener>,
    one_way: bool,
}

fn workload(name: &str, seed: u64, n: u64) -> Result<Workload, String> {
    Ok(match name {
        "password" => {
            let task = PasswordSearch::with_hidden_password(seed, n / 2);
            let screener = task.match_screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: true,
            }
        }
        "seti" => {
            let task = SetiSignal::new(seed);
            let screener = task.screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: false,
            }
        }
        "docking" => {
            let task = DrugScreening::new(seed);
            let screener = task.screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: false,
            }
        }
        "primes" => {
            struct Primes;
            impl Screener for Primes {
                fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
                    (fx.first() == Some(&1)).then(|| ScreenReport {
                        input: x,
                        payload: fx.to_vec(),
                    })
                }
            }
            Workload {
                task: Box::new(PrimalitySearch::new(1_000_001 | 1, 2)),
                screener: Box::new(Primes),
                one_way: false,
            }
        }
        other => return Err(format!("unknown workload {other:?}")),
    })
}

fn print_outcome(scheme: &str, outcome: &RoundOutcome) {
    println!("scheme:       {scheme}");
    println!("verdict:      {}", outcome.verdict);
    println!(
        "traffic:      {} B to participant, {} B back",
        outcome.supervisor_link.bytes_sent, outcome.supervisor_link.bytes_received
    );
    println!(
        "supervisor:   {} f-evals, {} hashes, {} g-hashes, {} verifications",
        outcome.supervisor_costs.f_evals,
        outcome.supervisor_costs.hash_ops,
        outcome.supervisor_costs.g_evals,
        outcome.supervisor_costs.verify_ops
    );
    println!(
        "participant:  {} f-evals, {} hashes, {} g-hashes",
        outcome.participant_costs.f_evals,
        outcome.participant_costs.hash_ops,
        outcome.participant_costs.g_evals
    );
    println!(
        "reports:      {} result(s) of interest",
        outcome.reports.len()
    );
    for report in outcome.reports.iter().take(5) {
        println!("  {report}");
    }
}

fn cmd_run(mut args: Args<'_>) -> Result<(), String> {
    let scheme: String = args.value("--scheme", "cbs".into())?;
    let workload_name: String = args.value("--workload", "password".into())?;
    let n: u64 = args.value("--n", 1024)?;
    let m: usize = args.value("--m", 25)?;
    let cheat: f64 = args.value("--cheat", 0.0)?;
    let seed: u64 = args.value("--seed", 42)?;
    let partial: u32 = args.value("--partial", 0)?;
    args.finish()?;
    let w = workload(&workload_name, seed, n)?;
    let domain = Domain::try_new(0, n).map_err(|e| e.to_string())?;
    let storage = if partial == 0 {
        ParticipantStorage::Full
    } else {
        ParticipantStorage::Partial {
            subtree_height: partial,
        }
    };
    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(
        1.0 - cheat,
        CheatSelection::Scattered,
        ZeroGuesser::new(seed ^ 0xbad),
        seed,
    );
    let behaviour: &dyn WorkerBehaviour = if cheat > 0.0 { &cheater } else { &honest };
    if cheat > 0.0 {
        println!("participant fakes {:.0}% of its work\n", cheat * 100.0);
    }

    let outcome = match scheme.as_str() {
        "cbs" => run_cbs::<Sha256, _, _, _>(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            storage,
            &CbsConfig {
                task_id: 1,
                samples: m,
                seed,
                report_audit: 0,
            },
        )
        .map_err(|e| e.to_string())?,
        "ni-cbs" => run_ni_cbs::<Sha256, _, _, _>(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            storage,
            &NiCbsConfig {
                task_id: 1,
                samples: m,
                g_iterations: 1,
                report_audit: 0,
                audit_seed: seed,
            },
        )
        .map_err(|e| e.to_string())?,
        "naive" => run_naive(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            &NaiveConfig {
                task_id: 1,
                samples: m,
                seed,
            },
        )
        .map_err(|e| e.to_string())?,
        "ringer" => {
            if !w.one_way {
                return Err(format!(
                    "the ringer scheme requires a one-way f; workload {workload_name:?} is not \
                     (this is the paper's Section 1.1 limitation — use cbs instead)"
                ));
            }
            run_ringer(
                &w.task,
                &w.screener,
                domain,
                &behaviour,
                &RingerConfig {
                    task_id: 1,
                    ringers: m,
                    seed,
                },
            )
            .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown scheme {other:?}")),
    };
    print_outcome(&scheme, &outcome);
    Ok(())
}

/// Parses the campaign-defining `fleet` flags *except* the transport
/// selection (the `--connect` path forces [`FleetTransport::Remote`]
/// and must reject the in-process transport flags instead of parsing
/// them).
fn base_fleet_params(args: &mut Args<'_>) -> Result<FleetParams, String> {
    let participants: u64 = args.value("--participants", 4)?;
    // --threads is the historical alias from the thread-per-participant
    // runtime: the participant count, under its old name.
    let participants: u64 = args.value("--threads", participants)?;
    Ok(FleetParams {
        participants,
        cheaters: args.value("--cheaters", 1)?,
        n: args.value("--n", 4096)?,
        m: args.value("--m", 25)?,
        seed: args.value("--seed", 7)?,
        scheme: args.value("--scheme", "cbs".into())?,
        transport: FleetTransport::Direct,
        churn: args.flag("--churn"),
        chaos_seed: args.opt("--chaos")?,
    })
}

/// Parses the one transport-selection knob: `--transport
/// direct|brokered`, with `--broker` kept as a deprecated alias for
/// `--transport brokered` (a stderr hint nudges scripts over; combining
/// the two spellings is an error rather than a guess).
fn transport_from_args(args: &mut Args<'_>) -> Result<FleetTransport, String> {
    let transport: Option<String> = args.opt("--transport")?;
    let broker = args.flag("--broker");
    match (transport.as_deref(), broker) {
        (Some(t), true) => Err(format!(
            "--broker conflicts with --transport {t}; --broker is a deprecated alias for \
             --transport brokered — drop it"
        )),
        (Some("direct"), false) => Ok(FleetTransport::Direct),
        (Some("brokered"), false) => Ok(FleetTransport::Brokered),
        (Some(other), false) => Err(format!(
            "unknown transport {other:?} (expected direct or brokered; cross-process \
             campaigns use `ugc fleet --connect <host:port>`)"
        )),
        (None, true) => {
            eprintln!(
                "warning: --broker is deprecated; use --transport brokered \
                 (same campaign, same digest)"
            );
            Ok(FleetTransport::Brokered)
        }
        (None, false) => Ok(FleetTransport::Direct),
    }
}

/// The full in-process `fleet` flag set: base params plus transport.
fn fleet_params_from_args(args: &mut Args<'_>) -> Result<FleetParams, String> {
    let transport = transport_from_args(args)?;
    let mut params = base_fleet_params(args)?;
    params.transport = transport;
    Ok(params)
}

fn cmd_verify_journal(path: &Path) -> Result<(), String> {
    let seal = verify_journal(path).map_err(|e| format!("journal verification failed: {e}"))?;
    println!("journal {}: sealed and intact", path.display());
    println!("records:     {}", seal.records);
    println!("attestation: {}", seal.digest_hex());
    Ok(())
}

fn cmd_fleet(mut args: Args<'_>) -> Result<(), String> {
    let connect: Option<String> = args.raw("--connect")?.map(str::to_owned);
    let journal_path: Option<String> = args.raw("--journal")?.map(str::to_owned);
    let verify = args.flag("--verify-journal");
    let resume = args.flag("--resume");
    let kill_at: Option<u64> = args.opt("--kill-at")?;
    // --workers w multiplexes all participants over a w-thread scheduler
    // pool (0 = one per available core); absent, every participant gets
    // its own OS thread. Verdicts and fault logs are identical either
    // way.
    let workers: Option<usize> = args.opt::<usize>("--workers")?.map(|w| {
        if w == 0 {
            GridScheduler::available().workers()
        } else {
            w
        }
    });
    // --steal-seed s seeds the pool's work-stealing victim order — a
    // scheduling-only knob: any seed reproduces the identical campaign
    // (verdicts, fault log, byte counts).
    let steal_seed: u64 = args.opt("--steal-seed")?.unwrap_or(0);
    // --lanes picks the message-parallel digest kernel width — a pure
    // speed knob: digests, verdicts and journals are bit-identical at
    // any setting, so it never reaches the campaign params.
    let lanes: LaneWidth = match args.raw("--lanes")? {
        None => LaneWidth::default(),
        Some(s) => LaneWidth::parse(s)
            .ok_or_else(|| format!("--lanes {s:?}: expected scalar, x4 or x8"))?,
    };

    if let Some(addr) = connect {
        if journal_path.is_some() || verify || resume || kill_at.is_some() {
            return Err(
                "--connect runs the campaign over a live grid; the crash-durability flags \
                 (--journal, --verify-journal, --resume, --kill-at) apply only to in-process \
                 campaigns"
                    .into(),
            );
        }
        if args.raw("--transport")?.is_some() || args.flag("--broker") {
            return Err("--connect implies the remote transport; drop --transport/--broker".into());
        }
        let mut params = base_fleet_params(&mut args)?;
        args.finish()?;
        if params.chaos_seed.is_some() || params.churn {
            return Err(
                "--connect cannot inject chaos: --chaos/--churn fault schedules are keyed by \
                 in-process link identity (run them with --transport brokered instead)"
                    .into(),
            );
        }
        params.transport = FleetTransport::Remote;
        return cmd_fleet_connect(&addr, &params, workers, steal_seed, lanes);
    }

    if verify {
        let Some(path) = journal_path else {
            return Err(
                "--verify-journal requires --journal <path> (the journal to verify)".into(),
            );
        };
        if resume || kill_at.is_some() || workers.is_some() {
            return Err(
                "--verify-journal only checks an existing journal; it cannot be combined \
                 with --resume, --kill-at or --workers"
                    .into(),
            );
        }
        args.finish().map_err(|e| {
            format!(
                "--verify-journal only checks an existing journal; drop the campaign flags ({e})"
            )
        })?;
        return cmd_verify_journal(Path::new(&path));
    }
    if resume && journal_path.is_none() {
        return Err("--resume requires --journal <path> (the journal to resume from)".into());
    }
    if kill_at.is_some() && journal_path.is_none() {
        return Err("--kill-at requires --journal <path> (there is no journal to crash)".into());
    }
    let crash = match kill_at {
        Some(record) => CrashPlan::at(record),
        None => CrashPlan::never(),
    };

    // A resumed campaign is defined by its journal header, a fresh one by
    // its flags — mutually exclusive, so a resume can never silently
    // diverge from what the journal recorded.
    let (params, resumed) = if resume {
        args.finish().map_err(|e| {
            format!(
                "--resume rebuilds the campaign from the journal; drop the campaign flags ({e})"
            )
        })?;
        let path = journal_path.as_deref().expect("validated above");
        let (campaign, report) =
            DurableCampaign::resume(Path::new(path), crash).map_err(|e| e.to_string())?;
        let params = FleetParams::decode(&campaign.header().app)?;
        (params, Some((campaign, report)))
    } else {
        let params = fleet_params_from_args(&mut args)?;
        args.finish()?;
        (params, None)
    };

    let plan = CampaignPlan::new(params.clone())?;
    let members = plan.members();
    let config = plan.mixed_config(workers, steal_seed, lanes);
    let domain = plan.domain();
    let (task, screener) = (plan.task(), plan.screener());
    let outcome = match (&journal_path, resumed) {
        (None, _) => run_mixed_fleet(task, screener, domain, &members, &config),
        (Some(path), None) => {
            let header = CampaignHeader::for_campaign(&members, domain, &config, params.encode());
            let mut campaign = DurableCampaign::create(Path::new(path), header, crash)
                .map_err(|e| e.to_string())?;
            run_durable_fleet(task, screener, domain, &members, &config, &mut campaign)
        }
        (Some(_), Some((mut campaign, report))) => {
            if let Some(reason) = &report.torn {
                println!("warning: journal tail truncated: {reason}");
            }
            println!(
                "resumed: {} committed round(s) replayed ({} record(s) kept, {} dropped)",
                report.rounds_replayed, report.records_kept, report.records_dropped
            );
            run_durable_fleet(task, screener, domain, &members, &config, &mut campaign)
        }
    };
    let summary = match outcome {
        Ok(summary) => summary,
        Err(e) if kill_at.is_some() && e.to_string().contains("injected kill point") => {
            // The crash the caller asked for: report where it hit and how
            // to pick the campaign back up, with a distinct exit code so
            // harnesses can tell "killed as requested" from real failures.
            println!("campaign aborted: {e}");
            println!("resume with: ugc fleet --journal <path> --resume");
            std::process::exit(2);
        }
        Err(e) => return Err(e.to_string()),
    };
    print_fleet_summary(&summary, &params, workers);
    if let Some(path) = &journal_path {
        let seal = verify_journal(Path::new(path))
            .map_err(|e| format!("journal failed post-run verification: {e}"))?;
        println!(
            "journal: {path} sealed ({} records, attestation {})",
            seal.records,
            seal.digest_hex()
        );
    }
    Ok(())
}

/// `ugc fleet --connect`: the supervisor half of a cross-process
/// campaign, run against a live `ugc broker serve` grid over TCP. Same
/// campaign expansion, same engine, different backend — which is why the
/// printed digest matches the in-process run bit-for-bit.
fn cmd_fleet_connect(
    addr: &str,
    params: &FleetParams,
    workers: Option<usize>,
    steal_seed: u64,
    lanes: LaneWidth,
) -> Result<(), String> {
    let plan = CampaignPlan::new(params.clone())?;
    let stream = netgrid::connect(addr)?;
    let (link, welcome) = handshake_supervisor(stream, &params.encode())
        .map_err(|e| format!("handshake with {addr}: {e}"))?;
    println!(
        "connected to grid at {addr}: {} remote participant process(es)",
        welcome.peer_count
    );
    let mut backend = RemoteGridBackend::new(link);
    let members = plan.members();
    let config = plan.mixed_config(workers, steal_seed, lanes);
    let summary = run_mixed_fleet_on(
        plan.task(),
        plan.screener(),
        plan.domain(),
        &members,
        &config,
        &mut backend,
    )
    .map_err(|e| e.to_string())?;
    print_fleet_summary(&summary, params, workers);
    Ok(())
}

/// The end-of-campaign report shared by every fleet path: execution
/// shape, transport, per-member verdicts, reassignments, chaos stats,
/// throughput, and the replay digest.
fn print_fleet_summary(summary: &FleetSummary, params: &FleetParams, workers: Option<usize>) {
    let participants = params.participants;
    let scheme_name = params.scheme.as_str();
    let execution = match workers {
        Some(w) => format!("{participants} participants on {w} scheduler workers"),
        None => format!("{participants} threads"),
    };
    println!(
        "fleet of {execution} over {} inputs via {}: {} accepted, {} rejected",
        params.n,
        match params.transport {
            FleetTransport::Direct => format!("direct links ({scheme_name})"),
            FleetTransport::Brokered => format!("the grid broker ({scheme_name})"),
            FleetTransport::Remote => format!("the remote grid broker ({scheme_name})"),
        },
        summary.accepted(),
        summary.rejected()
    );
    for member in &summary.members {
        println!(
            "  participant {}: share {} → {}{}",
            member.participant,
            member.share,
            member.outcome.verdict,
            if member.attempts > 1 {
                format!(" ({} attempts)", member.attempts)
            } else {
                String::new()
            }
        );
    }
    for share in summary.shares_to_reassign() {
        println!("  reassign {share}");
    }
    if let Some(plan) = params.chaos() {
        let count =
            |pred: fn(&FaultEvent) -> bool| summary.fault_events.iter().filter(|e| pred(e)).count();
        println!(
            "chaos seed {}: {} faults injected ({} dropped, {} duplicated, \
             {} reordered, {} delayed, {} crashed)",
            plan.seed,
            summary.fault_events.len(),
            count(|e| matches!(e, FaultEvent::Dropped { .. })),
            count(|e| matches!(e, FaultEvent::Duplicated { .. })),
            count(|e| matches!(e, FaultEvent::Reordered { .. })),
            count(|e| matches!(e, FaultEvent::Delayed { .. })),
            count(|e| matches!(e, FaultEvent::Crashed { .. })),
        );
    }
    println!("throughput: {}", summary.throughput);
    println!(
        "password found: {:?}",
        summary.reports.first().map(|r| r.input)
    );
    // The replay digest: everything digest-relevant (verdicts, attempts,
    // ledgers, fault log), wall clock excluded — identical for the same
    // campaign at any worker count, over any transport, with or without
    // a crash and resume.
    println!("digest: {}", summary_digest(summary));
}

/// `ugc broker serve`: bind a listener, assemble the roster (N
/// participant processes plus one supervisor), then relay the campaign
/// until the supervisor closes its side.
fn cmd_broker_serve(mut args: Args<'_>) -> Result<(), String> {
    let listen: String = args.value("--listen", "127.0.0.1:9400".into())?;
    let participants: usize = args.value("--participants", 2)?;
    args.finish()?;
    let server = GridServer::bind(&listen, participants)?;
    println!(
        "broker listening on {} for {participants} participant(s) and a supervisor",
        server.local_addr()?
    );
    let outcome = server.run()?;
    println!(
        "grid relay closed: {} participant process(es) served, {} outward / {} inward message(s)",
        outcome.joined, outcome.relay.outward, outcome.relay.inward
    );
    Ok(())
}

/// `ugc participant join`: connect to a broker, receive the campaign
/// params in the handshake, and serve participant slots until the
/// campaign ends.
fn cmd_participant_join(mut args: Args<'_>) -> Result<(), String> {
    let addr = args
        .positional()
        .ok_or_else(|| "participant join requires the broker address (host:port)".to_string())?
        .to_owned();
    args.finish()?;
    let outcome = netgrid::join(&addr)?;
    println!(
        "participant {} done: {} slot(s) served",
        outcome.peer_index, outcome.slots_served
    );
    Ok(())
}
