//! `ugc` — command-line driver for the Uncheatable Grid Computing library.
//!
//! ```text
//! ugc sample-size --epsilon 1e-4 --r 0.5 --q 0.5     Eq. (3): required m
//! ugc detection   --r 0.5 --q 0 --m 14               Eq. (2): survival probability
//! ugc run         --scheme cbs --workload seti --n 1024 --m 25 --cheat 0.5
//! ugc fleet       --participants 4 --cheaters 1 --n 4096 --m 25
//! ugc lint        [--json]                           determinism audit
//! ```
//!
//! Argument parsing is hand-rolled (the library has no CLI dependencies);
//! every command prints a short, table-shaped report.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;
use ugc_journal::{verify_journal, CrashPlan};
use uncheatable_grid::core::analysis::{
    cheat_success_probability, detection_probability, required_sample_size,
};
use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::scheme::naive::{run_naive, NaiveConfig};
use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::scheme::ringer::{run_ringer, RingerConfig};
use uncheatable_grid::core::{
    run_durable_fleet, run_mixed_fleet, summary_digest, CampaignHeader, DurableCampaign,
    FleetScheme, FleetTransport, MemberSpec, MixedFleetConfig, Parallelism, ParticipantStorage,
    RoundOutcome, VerificationScheme,
};
use uncheatable_grid::grid::codec::{get_bytes, get_u64, put_bytes, put_u64};
use uncheatable_grid::grid::runtime::{FaultPlan, GridScheduler};
use uncheatable_grid::grid::{
    CheatSelection, FaultEvent, GridError, HonestWorker, SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::{
    DrugScreening, PasswordSearch, PrimalitySearch, SetiSignal,
};
use uncheatable_grid::task::{ComputeTask, Domain, ScreenReport, Screener, ZeroGuesser};

const USAGE: &str = "\
usage: ugc <command> [options]

commands:
  sample-size --epsilon <e> --r <r> --q <q>      Eq. (3): required sample count
  detection   --r <r> --q <q> --m <m>            Eq. (2): cheat-survival probability
  run         --scheme <cbs|ni-cbs|naive|ringer> --workload <password|seti|docking|primes>
              [--n <inputs>] [--m <samples>] [--cheat <ratio>] [--partial <level>] [--seed <s>]
  fleet       [--participants <k>] [--cheaters <c>] [--n <inputs>] [--m <samples>] [--seed <s>]
              [--scheme <cbs|ni-cbs|naive|ringer>] [--broker] [--workers <w>]
              [--steal-seed <s>] [--threads <k>] [--chaos <seed>] [--churn]
              [--journal <path>] [--kill-at <r>] [--resume] [--verify-journal]
  lint        [--json] [--root <dir>]             audit the workspace for determinism hazards
  help                                            this message

The fleet runs every member as a concurrent session of one multiplexing
engine; --broker relays all sessions through a GRACE-style grid broker
over a single supervisor link (verdicts are identical either way).
--workers <w> multiplexes all participants as poll-driven state machines
over a fixed pool of w OS threads (w = 0 picks one per available core);
without it each participant gets its own OS thread. --steal-seed <s>
seeds the pool's work-stealing victim order — scheduling-only, any seed
reproduces the identical campaign. --threads sets the
participant count (same as --participants), --chaos <seed> injects
seeded message duplication/reordering/latency on every participant link,
and --churn adds participant crash/restart churn — failed sessions are
reassigned, and the whole campaign replays bit-identically from the
seed at any worker count.

--journal <path> makes the campaign crash-durable: every round is
written ahead to a checksummed journal before the supervisor acts on
it, so a killed run picks up with `ugc fleet --journal <path> --resume`
(the campaign flags live in the journal header, so --resume accepts
none) and finishes with verdicts, attempts, cost ledgers, fault log
and summary digest bit-identical to a run that was never interrupted.
--kill-at <r> crashes the supervisor deterministically at the r-th
campaign journal record (exit code 2), and --verify-journal checks a
finished journal's seal and prints its attestation digest.

lint statically audits every non-vendored .rs file for the hazards that
would break bit-identical replay (wall-clock reads, HashMap iteration,
ambient randomness, thread identity, truncating casts in codec paths,
unsafe code); it exits nonzero on any finding not suppressed by a
reasoned `ugc-lint: allow(<rule>): <reason>` annotation.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Hand-rolled `--key value` / `--flag` parser shared by every command:
/// each lookup marks the positions it consumed, and [`Args::finish`]
/// rejects anything left over, so a typo (`--particpants 3`) errors with
/// a usage hint and a nonzero exit instead of being silently ignored.
struct Args<'a> {
    argv: &'a [String],
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Args {
            used: vec![false; argv.len()],
            argv,
        }
    }

    /// The raw value following `key`: `Ok(None)` when the key is absent,
    /// an error when the key is present with nothing after it (a
    /// dangling `--key` must not silently fall back to the default).
    fn raw(&mut self, key: &str) -> Result<Option<&'a str>, String> {
        let Some(i) = self.argv.iter().position(|a| a == key) else {
            return Ok(None);
        };
        self.used[i] = true;
        let Some(value) = self.argv.get(i + 1) else {
            return Err(format!("{key} requires a value"));
        };
        self.used[i + 1] = true;
        Ok(Some(value))
    }

    /// `--key value`, parsed, or `None` when the key is absent.
    fn opt<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, String> {
        match self.raw(key)? {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {raw:?} for {key}")),
        }
    }

    /// `--key value`, parsed, with a default when the key is absent.
    fn value<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        Ok(self.opt(key)?.unwrap_or(default))
    }

    /// A bare `--flag` (consumed if present).
    fn flag(&mut self, key: &str) -> bool {
        match self.argv.iter().position(|a| a == key) {
            Some(i) => {
                self.used[i] = true;
                true
            }
            None => false,
        }
    }

    /// Fails on any argument no lookup consumed (unknown flags, stray
    /// values, missing `--key` prefixes).
    fn finish(self) -> Result<(), String> {
        let unrecognized: Vec<&str> = self
            .argv
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !**used)
            .map(|(arg, _)| arg.as_str())
            .collect();
        if unrecognized.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unrecognized argument(s): {}",
                unrecognized.join(" ")
            ))
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("sample-size") => cmd_sample_size(Args::new(&args[1..])),
        Some("detection") => cmd_detection(Args::new(&args[1..])),
        Some("run") => cmd_run(Args::new(&args[1..])),
        Some("fleet") => cmd_fleet(Args::new(&args[1..])),
        Some("lint") => cmd_lint(Args::new(&args[1..])),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_lint(mut args: Args<'_>) -> Result<(), String> {
    let json = args.flag("--json");
    let root: Option<String> = args.opt("--root")?;
    args.finish()?;
    let root = match root {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            ugc_lint::find_workspace_root(&cwd).ok_or_else(|| {
                format!(
                    "no workspace Cargo.toml found above {}; pass --root <dir>",
                    cwd.display()
                )
            })?
        }
    };
    let report = ugc_lint::lint_workspace(&root).map_err(|e| format!("audit failed: {e}"))?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        Ok(())
    } else {
        // Findings are already printed in full; a usage dump would bury
        // them, so exit directly instead of returning Err.
        std::process::exit(1);
    }
}

fn cmd_sample_size(mut args: Args<'_>) -> Result<(), String> {
    let epsilon: f64 = args.value("--epsilon", 1e-4)?;
    let r: f64 = args.value("--r", 0.5)?;
    let q: f64 = args.value("--q", 0.0)?;
    args.finish()?;
    match required_sample_size(epsilon, r, q) {
        Some(m) => {
            println!("Eq. (3): m ≥ log ε / log(r + (1-r)q)");
            println!("r = {r}, q = {q}, ε = {epsilon:e}  →  m = {m}");
            println!(
                "check: Pr[cheat | m={m}] = {:.3e}",
                cheat_success_probability(r, q, m)
            );
        }
        None => println!("no finite m: a participant with r + (1-r)q = 1 is indistinguishable"),
    }
    Ok(())
}

fn cmd_detection(mut args: Args<'_>) -> Result<(), String> {
    let r: f64 = args.value("--r", 0.5)?;
    let q: f64 = args.value("--q", 0.0)?;
    let m: u64 = args.value("--m", 14)?;
    args.finish()?;
    println!("Eq. (2): Pr[cheat succeeds] = (r + (1-r)q)^m");
    println!(
        "r = {r}, q = {q}, m = {m}  →  survive {:.3e}, detect {:.6}",
        cheat_success_probability(r, q, m),
        detection_probability(r, q, m)
    );
    Ok(())
}

/// A boxed screener so one code path serves all workloads.
struct Workload {
    task: Box<dyn ComputeTask>,
    screener: Box<dyn Screener>,
    one_way: bool,
}

fn workload(name: &str, seed: u64, n: u64) -> Result<Workload, String> {
    Ok(match name {
        "password" => {
            let task = PasswordSearch::with_hidden_password(seed, n / 2);
            let screener = task.match_screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: true,
            }
        }
        "seti" => {
            let task = SetiSignal::new(seed);
            let screener = task.screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: false,
            }
        }
        "docking" => {
            let task = DrugScreening::new(seed);
            let screener = task.screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: false,
            }
        }
        "primes" => {
            struct Primes;
            impl Screener for Primes {
                fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
                    (fx.first() == Some(&1)).then(|| ScreenReport {
                        input: x,
                        payload: fx.to_vec(),
                    })
                }
            }
            Workload {
                task: Box::new(PrimalitySearch::new(1_000_001 | 1, 2)),
                screener: Box::new(Primes),
                one_way: false,
            }
        }
        other => return Err(format!("unknown workload {other:?}")),
    })
}

fn print_outcome(scheme: &str, outcome: &RoundOutcome) {
    println!("scheme:       {scheme}");
    println!("verdict:      {}", outcome.verdict);
    println!(
        "traffic:      {} B to participant, {} B back",
        outcome.supervisor_link.bytes_sent, outcome.supervisor_link.bytes_received
    );
    println!(
        "supervisor:   {} f-evals, {} hashes, {} g-hashes, {} verifications",
        outcome.supervisor_costs.f_evals,
        outcome.supervisor_costs.hash_ops,
        outcome.supervisor_costs.g_evals,
        outcome.supervisor_costs.verify_ops
    );
    println!(
        "participant:  {} f-evals, {} hashes, {} g-hashes",
        outcome.participant_costs.f_evals,
        outcome.participant_costs.hash_ops,
        outcome.participant_costs.g_evals
    );
    println!(
        "reports:      {} result(s) of interest",
        outcome.reports.len()
    );
    for report in outcome.reports.iter().take(5) {
        println!("  {report}");
    }
}

fn cmd_run(mut args: Args<'_>) -> Result<(), String> {
    let scheme: String = args.value("--scheme", "cbs".into())?;
    let workload_name: String = args.value("--workload", "password".into())?;
    let n: u64 = args.value("--n", 1024)?;
    let m: usize = args.value("--m", 25)?;
    let cheat: f64 = args.value("--cheat", 0.0)?;
    let seed: u64 = args.value("--seed", 42)?;
    let partial: u32 = args.value("--partial", 0)?;
    args.finish()?;
    let w = workload(&workload_name, seed, n)?;
    let domain = Domain::try_new(0, n).map_err(|e| e.to_string())?;
    let storage = if partial == 0 {
        ParticipantStorage::Full
    } else {
        ParticipantStorage::Partial {
            subtree_height: partial,
        }
    };
    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(
        1.0 - cheat,
        CheatSelection::Scattered,
        ZeroGuesser::new(seed ^ 0xbad),
        seed,
    );
    let behaviour: &dyn WorkerBehaviour = if cheat > 0.0 { &cheater } else { &honest };
    if cheat > 0.0 {
        println!("participant fakes {:.0}% of its work\n", cheat * 100.0);
    }

    let outcome = match scheme.as_str() {
        "cbs" => run_cbs::<Sha256, _, _, _>(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            storage,
            &CbsConfig {
                task_id: 1,
                samples: m,
                seed,
                report_audit: 0,
            },
        )
        .map_err(|e| e.to_string())?,
        "ni-cbs" => run_ni_cbs::<Sha256, _, _, _>(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            storage,
            &NiCbsConfig {
                task_id: 1,
                samples: m,
                g_iterations: 1,
                report_audit: 0,
                audit_seed: seed,
            },
        )
        .map_err(|e| e.to_string())?,
        "naive" => run_naive(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            &NaiveConfig {
                task_id: 1,
                samples: m,
                seed,
            },
        )
        .map_err(|e| e.to_string())?,
        "ringer" => {
            if !w.one_way {
                return Err(format!(
                    "the ringer scheme requires a one-way f; workload {workload_name:?} is not \
                     (this is the paper's Section 1.1 limitation — use cbs instead)"
                ));
            }
            run_ringer(
                &w.task,
                &w.screener,
                domain,
                &behaviour,
                &RingerConfig {
                    task_id: 1,
                    ringers: m,
                    seed,
                },
            )
            .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown scheme {other:?}")),
    };
    print_outcome(&scheme, &outcome);
    Ok(())
}

/// The campaign-defining `fleet` flags. Journaled campaigns encode these
/// into the header's app blob, so `--resume` rebuilds the identical
/// campaign — task, roster, chaos plan, deadline, retry budget — from
/// the journal alone, with no flags needed and none accepted.
struct FleetParams {
    participants: u64,
    cheaters: u64,
    n: u64,
    m: u64,
    seed: u64,
    scheme: String,
    broker: bool,
    churn: bool,
    chaos_seed: Option<u64>,
}

/// Version tag of the app-blob layout (bump on any change).
const FLEET_PARAMS_VERSION: u64 = 1;

impl FleetParams {
    fn from_args(args: &mut Args<'_>) -> Result<Self, String> {
        let participants: u64 = args.value("--participants", 4)?;
        // --threads is the historical alias from the thread-per-participant
        // runtime: the participant count, under its old name.
        let participants: u64 = args.value("--threads", participants)?;
        Ok(FleetParams {
            participants,
            cheaters: args.value("--cheaters", 1)?,
            n: args.value("--n", 4096)?,
            m: args.value("--m", 25)?,
            seed: args.value("--seed", 7)?,
            scheme: args.value("--scheme", "cbs".into())?,
            broker: args.flag("--broker"),
            churn: args.flag("--churn"),
            chaos_seed: args.opt("--chaos")?,
        })
    }

    /// Encodes the params as the journal header's app blob.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, FLEET_PARAMS_VERSION);
        put_u64(&mut buf, self.participants);
        put_u64(&mut buf, self.cheaters);
        put_u64(&mut buf, self.n);
        put_u64(&mut buf, self.m);
        put_u64(&mut buf, self.seed);
        put_bytes(&mut buf, self.scheme.as_bytes());
        put_u64(&mut buf, u64::from(self.broker));
        put_u64(&mut buf, u64::from(self.churn));
        match self.chaos_seed {
            None => put_u64(&mut buf, 0),
            Some(seed) => {
                put_u64(&mut buf, 1);
                put_u64(&mut buf, seed);
            }
        }
        buf
    }

    /// Decodes an app blob written by [`encode`](Self::encode).
    fn decode(blob: &[u8]) -> Result<Self, String> {
        let err = |e: GridError| format!("journal app blob: {e}");
        let mut buf = blob;
        let version = get_u64(&mut buf, "app blob version").map_err(err)?;
        if version != FLEET_PARAMS_VERSION {
            return Err(format!(
                "journal app blob version {version} (this build reads {FLEET_PARAMS_VERSION}); \
                 the journal was not written by `ugc fleet`"
            ));
        }
        let participants = get_u64(&mut buf, "app participants").map_err(err)?;
        let cheaters = get_u64(&mut buf, "app cheaters").map_err(err)?;
        let n = get_u64(&mut buf, "app n").map_err(err)?;
        let m = get_u64(&mut buf, "app m").map_err(err)?;
        let seed = get_u64(&mut buf, "app seed").map_err(err)?;
        let scheme = String::from_utf8(get_bytes(&mut buf, "app scheme").map_err(err)?)
            .map_err(|_| "journal app blob: scheme name is not UTF-8".to_string())?;
        let broker = get_u64(&mut buf, "app broker flag").map_err(err)? != 0;
        let churn = get_u64(&mut buf, "app churn flag").map_err(err)? != 0;
        let chaos_seed = match get_u64(&mut buf, "app chaos presence").map_err(err)? {
            0 => None,
            _ => Some(get_u64(&mut buf, "app chaos seed").map_err(err)?),
        };
        if !buf.is_empty() {
            return Err(format!(
                "journal app blob has {} trailing byte(s)",
                buf.len()
            ));
        }
        Ok(FleetParams {
            participants,
            cheaters,
            n,
            m,
            seed,
            scheme,
            broker,
            churn,
            chaos_seed,
        })
    }
}

fn cmd_verify_journal(path: &Path) -> Result<(), String> {
    let seal = verify_journal(path).map_err(|e| format!("journal verification failed: {e}"))?;
    println!("journal {}: sealed and intact", path.display());
    println!("records:     {}", seal.records);
    println!("attestation: {}", seal.digest_hex());
    Ok(())
}

fn cmd_fleet(mut args: Args<'_>) -> Result<(), String> {
    let journal_path: Option<String> = args.raw("--journal")?.map(str::to_owned);
    let verify = args.flag("--verify-journal");
    let resume = args.flag("--resume");
    let kill_at: Option<u64> = args.opt("--kill-at")?;
    // --workers w multiplexes all participants over a w-thread scheduler
    // pool (0 = one per available core); absent, every participant gets
    // its own OS thread. Verdicts and fault logs are identical either
    // way.
    let workers: Option<usize> = args.opt::<usize>("--workers")?.map(|w| {
        if w == 0 {
            GridScheduler::available().workers()
        } else {
            w
        }
    });
    // --steal-seed s seeds the pool's work-stealing victim order — a
    // scheduling-only knob: any seed reproduces the identical campaign
    // (verdicts, fault log, byte counts).
    let steal_seed: u64 = args.opt("--steal-seed")?.unwrap_or(0);

    if verify {
        let Some(path) = journal_path else {
            return Err(
                "--verify-journal requires --journal <path> (the journal to verify)".into(),
            );
        };
        if resume || kill_at.is_some() || workers.is_some() {
            return Err(
                "--verify-journal only checks an existing journal; it cannot be combined \
                 with --resume, --kill-at or --workers"
                    .into(),
            );
        }
        args.finish().map_err(|e| {
            format!(
                "--verify-journal only checks an existing journal; drop the campaign flags ({e})"
            )
        })?;
        return cmd_verify_journal(Path::new(&path));
    }
    if resume && journal_path.is_none() {
        return Err("--resume requires --journal <path> (the journal to resume from)".into());
    }
    if kill_at.is_some() && journal_path.is_none() {
        return Err("--kill-at requires --journal <path> (there is no journal to crash)".into());
    }
    let crash = match kill_at {
        Some(record) => CrashPlan::at(record),
        None => CrashPlan::never(),
    };

    // A resumed campaign is defined by its journal header, a fresh one by
    // its flags — mutually exclusive, so a resume can never silently
    // diverge from what the journal recorded.
    let (params, resumed) = if resume {
        args.finish().map_err(|e| {
            format!(
                "--resume rebuilds the campaign from the journal; drop the campaign flags ({e})"
            )
        })?;
        let path = journal_path.as_deref().expect("validated above");
        let (campaign, report) =
            DurableCampaign::resume(Path::new(path), crash).map_err(|e| e.to_string())?;
        let params = FleetParams::decode(&campaign.header().app)?;
        (params, Some((campaign, report)))
    } else {
        let params = FleetParams::from_args(&mut args)?;
        args.finish()?;
        (params, None)
    };

    if params.cheaters > params.participants {
        return Err("more cheaters than participants".into());
    }
    let participants = usize::try_from(params.participants)
        .map_err(|_| "participant count exceeds this platform's usize".to_string())?;
    let cheaters = usize::try_from(params.cheaters)
        .map_err(|_| "cheater count exceeds this platform's usize".to_string())?;
    let m = usize::try_from(params.m)
        .map_err(|_| "sample count exceeds this platform's usize".to_string())?;
    let (n, seed) = (params.n, params.seed);
    let scheme_name = params.scheme.as_str();
    let (churn, chaos_seed) = (params.churn, params.chaos_seed);
    let transport = if params.broker {
        FleetTransport::Brokered
    } else {
        FleetTransport::Direct
    };
    let chaos = if chaos_seed.is_some() || churn {
        let mut plan = FaultPlan::chaos(chaos_seed.unwrap_or(1));
        if churn {
            plan = plan.with_churn(200);
        }
        Some(plan)
    } else {
        None
    };
    let scheme = match scheme_name {
        "cbs" => FleetScheme::Cbs {
            samples: m,
            report_audit: 0,
        },
        "ni-cbs" => FleetScheme::NiCbs {
            samples: m,
            g_iterations: 1,
            report_audit: 0,
        },
        "naive" => FleetScheme::Naive { samples: m },
        "ringer" => FleetScheme::Ringer { ringers: m },
        other => return Err(format!("unknown scheme {other:?}")),
    };
    let task = PasswordSearch::with_hidden_password(seed, n / 3);
    let screener = task.match_screener();
    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(
        0.5,
        CheatSelection::Scattered,
        ZeroGuesser::new(seed ^ 0xf1ee),
        seed,
    );
    // One scheme instance per member, each with the same derived seed
    // `run_fleet_over` would have used — the chaos path needs the
    // MemberSpec form so the fault plan, deadline and retry budget ride
    // along in MixedFleetConfig.
    let schemes: Vec<Box<dyn VerificationScheme<Sha256>>> = (0..participants)
        .map(|i| {
            scheme.instantiate::<Sha256>(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64),
            )
        })
        .collect();
    let members: Vec<MemberSpec<'_, Sha256>> = schemes
        .iter()
        .enumerate()
        .map(|(i, scheme)| MemberSpec {
            scheme: scheme.as_ref(),
            behaviours: vec![if i < cheaters {
                &cheater as &dyn WorkerBehaviour
            } else {
                &honest as &dyn WorkerBehaviour
            }],
        })
        .collect();
    // The inactivity deadline is a hang-guard, not a pace-setter: the
    // engine's clock only resets on received messages, and a participant
    // legitimately spends its whole share evaluating f before it says
    // anything. Scale the allowance with the share size (generously — a
    // password-search f-eval plus tree hashing is ~1 µs) on top of a
    // 10 s floor so huge `--n` runs are not killed mid-compute.
    let deadline =
        Duration::from_secs(10) + Duration::from_micros(2 * n.div_ceil(participants.max(1) as u64));
    let domain = Domain::try_new(0, n).map_err(|e| e.to_string())?;
    let config = MixedFleetConfig {
        transport,
        chaos,
        deadline: chaos.map(|_| deadline),
        retries: if chaos.is_some() { 5 } else { 0 },
        storage: ParticipantStorage::Full,
        parallelism: Parallelism::default(),
        envelope: false,
        workers,
        steal_seed,
    };
    let outcome = match (&journal_path, resumed) {
        (None, _) => run_mixed_fleet(&task, &screener, domain, &members, &config),
        (Some(path), None) => {
            let header = CampaignHeader::for_campaign(&members, domain, &config, params.encode());
            let mut campaign = DurableCampaign::create(Path::new(path), header, crash)
                .map_err(|e| e.to_string())?;
            run_durable_fleet(&task, &screener, domain, &members, &config, &mut campaign)
        }
        (Some(_), Some((mut campaign, report))) => {
            if let Some(reason) = &report.torn {
                println!("warning: journal tail truncated: {reason}");
            }
            println!(
                "resumed: {} committed round(s) replayed ({} record(s) kept, {} dropped)",
                report.rounds_replayed, report.records_kept, report.records_dropped
            );
            run_durable_fleet(&task, &screener, domain, &members, &config, &mut campaign)
        }
    };
    let summary = match outcome {
        Ok(summary) => summary,
        Err(e) if kill_at.is_some() && e.to_string().contains("injected kill point") => {
            // The crash the caller asked for: report where it hit and how
            // to pick the campaign back up, with a distinct exit code so
            // harnesses can tell "killed as requested" from real failures.
            println!("campaign aborted: {e}");
            println!("resume with: ugc fleet --journal <path> --resume");
            std::process::exit(2);
        }
        Err(e) => return Err(e.to_string()),
    };
    let execution = match workers {
        Some(w) => format!("{participants} participants on {w} scheduler workers"),
        None => format!("{participants} threads"),
    };
    println!(
        "fleet of {execution} over {n} inputs via {}: {} accepted, {} rejected",
        match transport {
            FleetTransport::Direct => format!("direct links ({scheme_name})"),
            FleetTransport::Brokered => format!("the grid broker ({scheme_name})"),
        },
        summary.accepted(),
        summary.rejected()
    );
    for member in &summary.members {
        println!(
            "  participant {}: share {} → {}{}",
            member.participant,
            member.share,
            member.outcome.verdict,
            if member.attempts > 1 {
                format!(" ({} attempts)", member.attempts)
            } else {
                String::new()
            }
        );
    }
    for share in summary.shares_to_reassign() {
        println!("  reassign {share}");
    }
    if let Some(plan) = chaos {
        let count =
            |pred: fn(&FaultEvent) -> bool| summary.fault_events.iter().filter(|e| pred(e)).count();
        println!(
            "chaos seed {}: {} faults injected ({} dropped, {} duplicated, \
             {} reordered, {} delayed, {} crashed)",
            plan.seed,
            summary.fault_events.len(),
            count(|e| matches!(e, FaultEvent::Dropped { .. })),
            count(|e| matches!(e, FaultEvent::Duplicated { .. })),
            count(|e| matches!(e, FaultEvent::Reordered { .. })),
            count(|e| matches!(e, FaultEvent::Delayed { .. })),
            count(|e| matches!(e, FaultEvent::Crashed { .. })),
        );
    }
    println!("throughput: {}", summary.throughput);
    println!(
        "password found: {:?}",
        summary.reports.first().map(|r| r.input)
    );
    // The replay digest: everything digest-relevant (verdicts, attempts,
    // ledgers, fault log), wall clock excluded — identical for the same
    // campaign at any worker count, with or without a crash and resume.
    println!("digest: {}", summary_digest(&summary));
    if let Some(path) = &journal_path {
        let seal = verify_journal(Path::new(path))
            .map_err(|e| format!("journal failed post-run verification: {e}"))?;
        println!(
            "journal: {path} sealed ({} records, attestation {})",
            seal.records,
            seal.digest_hex()
        );
    }
    Ok(())
}
