//! `ugc` — command-line driver for the Uncheatable Grid Computing library.
//!
//! ```text
//! ugc sample-size --epsilon 1e-4 --r 0.5 --q 0.5     Eq. (3): required m
//! ugc detection   --r 0.5 --q 0 --m 14               Eq. (2): survival probability
//! ugc run         --scheme cbs --workload seti --n 1024 --m 25 --cheat 0.5
//! ugc fleet       --participants 4 --cheaters 1 --n 4096 --m 25
//! ugc lint        [--json]                           determinism audit
//! ```
//!
//! Argument parsing is hand-rolled (the library has no CLI dependencies);
//! every command prints a short, table-shaped report.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;
use uncheatable_grid::core::analysis::{
    cheat_success_probability, detection_probability, required_sample_size,
};
use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::scheme::naive::{run_naive, NaiveConfig};
use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::scheme::ringer::{run_ringer, RingerConfig};
use uncheatable_grid::core::{
    run_mixed_fleet, FleetScheme, FleetTransport, MemberSpec, MixedFleetConfig, Parallelism,
    ParticipantStorage, RoundOutcome, VerificationScheme,
};
use uncheatable_grid::grid::runtime::{FaultPlan, GridScheduler};
use uncheatable_grid::grid::{
    CheatSelection, FaultEvent, HonestWorker, SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::{
    DrugScreening, PasswordSearch, PrimalitySearch, SetiSignal,
};
use uncheatable_grid::task::{ComputeTask, Domain, ScreenReport, Screener, ZeroGuesser};

const USAGE: &str = "\
usage: ugc <command> [options]

commands:
  sample-size --epsilon <e> --r <r> --q <q>      Eq. (3): required sample count
  detection   --r <r> --q <q> --m <m>            Eq. (2): cheat-survival probability
  run         --scheme <cbs|ni-cbs|naive|ringer> --workload <password|seti|docking|primes>
              [--n <inputs>] [--m <samples>] [--cheat <ratio>] [--partial <level>] [--seed <s>]
  fleet       [--participants <k>] [--cheaters <c>] [--n <inputs>] [--m <samples>] [--seed <s>]
              [--scheme <cbs|ni-cbs|naive|ringer>] [--broker] [--workers <w>]
              [--threads <k>] [--chaos <seed>] [--churn]
  lint        [--json] [--root <dir>]             audit the workspace for determinism hazards
  help                                            this message

The fleet runs every member as a concurrent session of one multiplexing
engine; --broker relays all sessions through a GRACE-style grid broker
over a single supervisor link (verdicts are identical either way).
--workers <w> multiplexes all participants as poll-driven state machines
over a fixed pool of w OS threads (w = 0 picks one per available core);
without it each participant gets its own OS thread. --threads sets the
participant count (same as --participants), --chaos <seed> injects
seeded message duplication/reordering/latency on every participant link,
and --churn adds participant crash/restart churn — failed sessions are
reassigned, and the whole campaign replays bit-identically from the
seed at any worker count.

lint statically audits every non-vendored .rs file for the hazards that
would break bit-identical replay (wall-clock reads, HashMap iteration,
ambient randomness, thread identity, truncating casts in codec paths,
unsafe code); it exits nonzero on any finding not suppressed by a
reasoned `ugc-lint: allow(<rule>): <reason>` annotation.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Hand-rolled `--key value` / `--flag` parser shared by every command:
/// each lookup marks the positions it consumed, and [`Args::finish`]
/// rejects anything left over, so a typo (`--particpants 3`) errors with
/// a usage hint and a nonzero exit instead of being silently ignored.
struct Args<'a> {
    argv: &'a [String],
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(argv: &'a [String]) -> Self {
        Args {
            used: vec![false; argv.len()],
            argv,
        }
    }

    /// The raw value following `key`: `Ok(None)` when the key is absent,
    /// an error when the key is present with nothing after it (a
    /// dangling `--key` must not silently fall back to the default).
    fn raw(&mut self, key: &str) -> Result<Option<&'a str>, String> {
        let Some(i) = self.argv.iter().position(|a| a == key) else {
            return Ok(None);
        };
        self.used[i] = true;
        let Some(value) = self.argv.get(i + 1) else {
            return Err(format!("{key} requires a value"));
        };
        self.used[i + 1] = true;
        Ok(Some(value))
    }

    /// `--key value`, parsed, or `None` when the key is absent.
    fn opt<T: std::str::FromStr>(&mut self, key: &str) -> Result<Option<T>, String> {
        match self.raw(key)? {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value {raw:?} for {key}")),
        }
    }

    /// `--key value`, parsed, with a default when the key is absent.
    fn value<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, String> {
        Ok(self.opt(key)?.unwrap_or(default))
    }

    /// A bare `--flag` (consumed if present).
    fn flag(&mut self, key: &str) -> bool {
        match self.argv.iter().position(|a| a == key) {
            Some(i) => {
                self.used[i] = true;
                true
            }
            None => false,
        }
    }

    /// Fails on any argument no lookup consumed (unknown flags, stray
    /// values, missing `--key` prefixes).
    fn finish(self) -> Result<(), String> {
        let unrecognized: Vec<&str> = self
            .argv
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !**used)
            .map(|(arg, _)| arg.as_str())
            .collect();
        if unrecognized.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unrecognized argument(s): {}",
                unrecognized.join(" ")
            ))
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("sample-size") => cmd_sample_size(Args::new(&args[1..])),
        Some("detection") => cmd_detection(Args::new(&args[1..])),
        Some("run") => cmd_run(Args::new(&args[1..])),
        Some("fleet") => cmd_fleet(Args::new(&args[1..])),
        Some("lint") => cmd_lint(Args::new(&args[1..])),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_lint(mut args: Args<'_>) -> Result<(), String> {
    let json = args.flag("--json");
    let root: Option<String> = args.opt("--root")?;
    args.finish()?;
    let root = match root {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            ugc_lint::find_workspace_root(&cwd).ok_or_else(|| {
                format!(
                    "no workspace Cargo.toml found above {}; pass --root <dir>",
                    cwd.display()
                )
            })?
        }
    };
    let report = ugc_lint::lint_workspace(&root).map_err(|e| format!("audit failed: {e}"))?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        Ok(())
    } else {
        // Findings are already printed in full; a usage dump would bury
        // them, so exit directly instead of returning Err.
        std::process::exit(1);
    }
}

fn cmd_sample_size(mut args: Args<'_>) -> Result<(), String> {
    let epsilon: f64 = args.value("--epsilon", 1e-4)?;
    let r: f64 = args.value("--r", 0.5)?;
    let q: f64 = args.value("--q", 0.0)?;
    args.finish()?;
    match required_sample_size(epsilon, r, q) {
        Some(m) => {
            println!("Eq. (3): m ≥ log ε / log(r + (1-r)q)");
            println!("r = {r}, q = {q}, ε = {epsilon:e}  →  m = {m}");
            println!(
                "check: Pr[cheat | m={m}] = {:.3e}",
                cheat_success_probability(r, q, m)
            );
        }
        None => println!("no finite m: a participant with r + (1-r)q = 1 is indistinguishable"),
    }
    Ok(())
}

fn cmd_detection(mut args: Args<'_>) -> Result<(), String> {
    let r: f64 = args.value("--r", 0.5)?;
    let q: f64 = args.value("--q", 0.0)?;
    let m: u64 = args.value("--m", 14)?;
    args.finish()?;
    println!("Eq. (2): Pr[cheat succeeds] = (r + (1-r)q)^m");
    println!(
        "r = {r}, q = {q}, m = {m}  →  survive {:.3e}, detect {:.6}",
        cheat_success_probability(r, q, m),
        detection_probability(r, q, m)
    );
    Ok(())
}

/// A boxed screener so one code path serves all workloads.
struct Workload {
    task: Box<dyn ComputeTask>,
    screener: Box<dyn Screener>,
    one_way: bool,
}

fn workload(name: &str, seed: u64, n: u64) -> Result<Workload, String> {
    Ok(match name {
        "password" => {
            let task = PasswordSearch::with_hidden_password(seed, n / 2);
            let screener = task.match_screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: true,
            }
        }
        "seti" => {
            let task = SetiSignal::new(seed);
            let screener = task.screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: false,
            }
        }
        "docking" => {
            let task = DrugScreening::new(seed);
            let screener = task.screener();
            Workload {
                task: Box::new(task),
                screener: Box::new(screener),
                one_way: false,
            }
        }
        "primes" => {
            struct Primes;
            impl Screener for Primes {
                fn screen(&self, x: u64, fx: &[u8]) -> Option<ScreenReport> {
                    (fx.first() == Some(&1)).then(|| ScreenReport {
                        input: x,
                        payload: fx.to_vec(),
                    })
                }
            }
            Workload {
                task: Box::new(PrimalitySearch::new(1_000_001 | 1, 2)),
                screener: Box::new(Primes),
                one_way: false,
            }
        }
        other => return Err(format!("unknown workload {other:?}")),
    })
}

fn print_outcome(scheme: &str, outcome: &RoundOutcome) {
    println!("scheme:       {scheme}");
    println!("verdict:      {}", outcome.verdict);
    println!(
        "traffic:      {} B to participant, {} B back",
        outcome.supervisor_link.bytes_sent, outcome.supervisor_link.bytes_received
    );
    println!(
        "supervisor:   {} f-evals, {} hashes, {} g-hashes, {} verifications",
        outcome.supervisor_costs.f_evals,
        outcome.supervisor_costs.hash_ops,
        outcome.supervisor_costs.g_evals,
        outcome.supervisor_costs.verify_ops
    );
    println!(
        "participant:  {} f-evals, {} hashes, {} g-hashes",
        outcome.participant_costs.f_evals,
        outcome.participant_costs.hash_ops,
        outcome.participant_costs.g_evals
    );
    println!(
        "reports:      {} result(s) of interest",
        outcome.reports.len()
    );
    for report in outcome.reports.iter().take(5) {
        println!("  {report}");
    }
}

fn cmd_run(mut args: Args<'_>) -> Result<(), String> {
    let scheme: String = args.value("--scheme", "cbs".into())?;
    let workload_name: String = args.value("--workload", "password".into())?;
    let n: u64 = args.value("--n", 1024)?;
    let m: usize = args.value("--m", 25)?;
    let cheat: f64 = args.value("--cheat", 0.0)?;
    let seed: u64 = args.value("--seed", 42)?;
    let partial: u32 = args.value("--partial", 0)?;
    args.finish()?;
    let w = workload(&workload_name, seed, n)?;
    let domain = Domain::try_new(0, n).map_err(|e| e.to_string())?;
    let storage = if partial == 0 {
        ParticipantStorage::Full
    } else {
        ParticipantStorage::Partial {
            subtree_height: partial,
        }
    };
    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(
        1.0 - cheat,
        CheatSelection::Scattered,
        ZeroGuesser::new(seed ^ 0xbad),
        seed,
    );
    let behaviour: &dyn WorkerBehaviour = if cheat > 0.0 { &cheater } else { &honest };
    if cheat > 0.0 {
        println!("participant fakes {:.0}% of its work\n", cheat * 100.0);
    }

    let outcome = match scheme.as_str() {
        "cbs" => run_cbs::<Sha256, _, _, _>(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            storage,
            &CbsConfig {
                task_id: 1,
                samples: m,
                seed,
                report_audit: 0,
            },
        )
        .map_err(|e| e.to_string())?,
        "ni-cbs" => run_ni_cbs::<Sha256, _, _, _>(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            storage,
            &NiCbsConfig {
                task_id: 1,
                samples: m,
                g_iterations: 1,
                report_audit: 0,
                audit_seed: seed,
            },
        )
        .map_err(|e| e.to_string())?,
        "naive" => run_naive(
            &w.task,
            &w.screener,
            domain,
            &behaviour,
            &NaiveConfig {
                task_id: 1,
                samples: m,
                seed,
            },
        )
        .map_err(|e| e.to_string())?,
        "ringer" => {
            if !w.one_way {
                return Err(format!(
                    "the ringer scheme requires a one-way f; workload {workload_name:?} is not \
                     (this is the paper's Section 1.1 limitation — use cbs instead)"
                ));
            }
            run_ringer(
                &w.task,
                &w.screener,
                domain,
                &behaviour,
                &RingerConfig {
                    task_id: 1,
                    ringers: m,
                    seed,
                },
            )
            .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown scheme {other:?}")),
    };
    print_outcome(&scheme, &outcome);
    Ok(())
}

fn cmd_fleet(mut args: Args<'_>) -> Result<(), String> {
    let participants: usize = args.value("--participants", 4)?;
    // --threads is the historical alias from the thread-per-participant
    // runtime: the participant count, under its old name.
    let participants: usize = args.value("--threads", participants)?;
    let cheaters: usize = args.value("--cheaters", 1)?;
    let n: u64 = args.value("--n", 4096)?;
    let m: usize = args.value("--m", 25)?;
    let seed: u64 = args.value("--seed", 7)?;
    let scheme_name: String = args.value("--scheme", "cbs".into())?;
    // --workers w multiplexes all participants over a w-thread scheduler
    // pool (0 = one per available core); absent, every participant gets
    // its own OS thread. Verdicts and fault logs are identical either
    // way.
    let workers: Option<usize> = args.opt::<usize>("--workers")?.map(|w| {
        if w == 0 {
            GridScheduler::available().workers()
        } else {
            w
        }
    });
    let transport = if args.flag("--broker") {
        FleetTransport::Brokered
    } else {
        FleetTransport::Direct
    };
    let churn = args.flag("--churn");
    let chaos_seed: Option<u64> = args.opt("--chaos")?;
    args.finish()?;
    let chaos = if chaos_seed.is_some() || churn {
        let mut plan = FaultPlan::chaos(chaos_seed.unwrap_or(1));
        if churn {
            plan = plan.with_churn(200);
        }
        Some(plan)
    } else {
        None
    };
    if cheaters > participants {
        return Err("more cheaters than participants".into());
    }
    let scheme = match scheme_name.as_str() {
        "cbs" => FleetScheme::Cbs {
            samples: m,
            report_audit: 0,
        },
        "ni-cbs" => FleetScheme::NiCbs {
            samples: m,
            g_iterations: 1,
            report_audit: 0,
        },
        "naive" => FleetScheme::Naive { samples: m },
        "ringer" => FleetScheme::Ringer { ringers: m },
        other => return Err(format!("unknown scheme {other:?}")),
    };
    let task = PasswordSearch::with_hidden_password(seed, n / 3);
    let screener = task.match_screener();
    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(
        0.5,
        CheatSelection::Scattered,
        ZeroGuesser::new(seed ^ 0xf1ee),
        seed,
    );
    // One scheme instance per member, each with the same derived seed
    // `run_fleet_over` would have used — the chaos path needs the
    // MemberSpec form so the fault plan, deadline and retry budget ride
    // along in MixedFleetConfig.
    let schemes: Vec<Box<dyn VerificationScheme<Sha256>>> = (0..participants)
        .map(|i| {
            scheme.instantiate::<Sha256>(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64),
            )
        })
        .collect();
    let members: Vec<MemberSpec<'_, Sha256>> = schemes
        .iter()
        .enumerate()
        .map(|(i, scheme)| MemberSpec {
            scheme: scheme.as_ref(),
            behaviours: vec![if i < cheaters {
                &cheater as &dyn WorkerBehaviour
            } else {
                &honest as &dyn WorkerBehaviour
            }],
        })
        .collect();
    // The inactivity deadline is a hang-guard, not a pace-setter: the
    // engine's clock only resets on received messages, and a participant
    // legitimately spends its whole share evaluating f before it says
    // anything. Scale the allowance with the share size (generously — a
    // password-search f-eval plus tree hashing is ~1 µs) on top of a
    // 10 s floor so huge `--n` runs are not killed mid-compute.
    let deadline =
        Duration::from_secs(10) + Duration::from_micros(2 * n.div_ceil(participants.max(1) as u64));
    let summary = run_mixed_fleet(
        &task,
        &screener,
        Domain::try_new(0, n).map_err(|e| e.to_string())?,
        &members,
        &MixedFleetConfig {
            transport,
            chaos,
            deadline: chaos.map(|_| deadline),
            retries: if chaos.is_some() { 5 } else { 0 },
            storage: ParticipantStorage::Full,
            parallelism: Parallelism::default(),
            envelope: false,
            workers,
        },
    )
    .map_err(|e| e.to_string())?;
    let execution = match workers {
        Some(w) => format!("{participants} participants on {w} scheduler workers"),
        None => format!("{participants} threads"),
    };
    println!(
        "fleet of {execution} over {n} inputs via {}: {} accepted, {} rejected",
        match transport {
            FleetTransport::Direct => format!("direct links ({scheme_name})"),
            FleetTransport::Brokered => format!("the grid broker ({scheme_name})"),
        },
        summary.accepted(),
        summary.rejected()
    );
    for member in &summary.members {
        println!(
            "  participant {}: share {} → {}{}",
            member.participant,
            member.share,
            member.outcome.verdict,
            if member.attempts > 1 {
                format!(" ({} attempts)", member.attempts)
            } else {
                String::new()
            }
        );
    }
    for share in summary.shares_to_reassign() {
        println!("  reassign {share}");
    }
    if let Some(plan) = chaos {
        let count =
            |pred: fn(&FaultEvent) -> bool| summary.fault_events.iter().filter(|e| pred(e)).count();
        println!(
            "chaos seed {}: {} faults injected ({} dropped, {} duplicated, \
             {} reordered, {} delayed, {} crashed)",
            plan.seed,
            summary.fault_events.len(),
            count(|e| matches!(e, FaultEvent::Dropped { .. })),
            count(|e| matches!(e, FaultEvent::Duplicated { .. })),
            count(|e| matches!(e, FaultEvent::Reordered { .. })),
            count(|e| matches!(e, FaultEvent::Delayed { .. })),
            count(|e| matches!(e, FaultEvent::Crashed { .. })),
        );
    }
    println!("throughput: {}", summary.throughput);
    println!(
        "password found: {:?}",
        summary.reports.first().map(|r| r.input)
    );
    Ok(())
}
