//! # Uncheatable Grid Computing
//!
//! A complete Rust implementation of *Uncheatable Grid Computing* (Du,
//! Jia, Mangal, Murugesan; ICDCS 2004): the Commitment-Based Sampling
//! (CBS) scheme, its storage-optimised and non-interactive variants, every
//! baseline the paper compares against, and the grid-computing substrate
//! to run and measure them.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`hash`] | `ugc-hash` | MD5 / SHA-1 / SHA-256 from scratch, hardened `g = H^k` |
//! | [`merkle`] | `ugc-merkle` | commitment trees, authentication paths, partial storage |
//! | [`task`] | `ugc-task` | compute functions, screeners, domains, synthetic workloads |
//! | [`grid`] | `ugc-grid` | byte-counted transport, cost ledgers, cheating behaviours, broker |
//! | [`core`] | `ugc-core` | CBS, NI-CBS, naive sampling, double-check, ringers, closed-form analysis |
//! | [`sim`] | `ugc-sim` | Monte-Carlo harness, statistics, table printing |
//!
//! # Quick start
//!
//! Verify an untrusted worker with interactive CBS:
//!
//! ```
//! use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
//! use uncheatable_grid::core::ParticipantStorage;
//! use uncheatable_grid::grid::HonestWorker;
//! use uncheatable_grid::hash::Sha256;
//! use uncheatable_grid::task::{workloads::PasswordSearch, Domain};
//!
//! let task = PasswordSearch::with_hidden_password(42, 1000);
//! let screener = task.match_screener();
//! let outcome = run_cbs::<Sha256, _, _, _>(
//!     &task,
//!     &screener,
//!     Domain::new(0, 4096),
//!     &HonestWorker,
//!     ParticipantStorage::Full,
//!     &CbsConfig { task_id: 1, samples: 30, seed: 7, report_audit: 0 },
//! )?;
//! assert!(outcome.accepted);
//! assert_eq!(outcome.reports[0].input, 1000); // the password was found
//! # Ok::<(), uncheatable_grid::core::SchemeError>(())
//! ```
//!
//! For whole-fleet verification use [`core::run_fleet`], and for the full
//! operational loop (verify, reject, reassign until the domain is
//! trustworthy) use [`core::run_campaign`].
//!
//! See `examples/` for complete scenarios (password cracking, SETI-style
//! signal search, drug screening, a broker-mediated non-interactive grid,
//! a multi-round campaign), the `ugc` binary for a command-line driver,
//! and `crates/bench/src/bin/` for the binaries that regenerate every
//! figure and table of the paper.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod netgrid;

pub use ugc_core as core;
pub use ugc_grid as grid;
pub use ugc_hash as hash;
pub use ugc_merkle as merkle;
pub use ugc_sim as sim;
pub use ugc_task as task;
