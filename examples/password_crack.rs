//! The paper's Section 3 motivating scenario: brute-force password search
//! distributed over several participants, one of whom cheats.
//!
//! The supervisor partitions a 2¹⁶ key space over four participants (the
//! Section 2.1 partition), runs interactive CBS against each, and compares
//! the result with the Golle–Mironov ringer scheme — the related-work
//! baseline that also works here because password hashing is one-way.
//!
//! Run: `cargo run --release --example password_crack`

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::scheme::ringer::{run_ringer, RingerConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::{CheatSelection, HonestWorker, SemiHonestCheater, WorkerBehaviour};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{Domain, ZeroGuesser};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = PasswordSearch::with_hidden_password(9000, 51_200); // hidden in participant 3's share
    let screener = task.match_screener();
    let key_space = Domain::new(0, 1 << 16);
    let shares = key_space.split(4)?;

    // Participant 2 computes only 70% of its share and fakes the rest.
    let cheater = SemiHonestCheater::new(0.7, CheatSelection::Scattered, ZeroGuesser::new(4), 22);
    let honest = HonestWorker;
    let behaviours: Vec<&dyn WorkerBehaviour> = vec![&honest, &honest, &cheater, &honest];

    println!("CBS over 4 participants, 2^16 keys, m = 25 samples each:\n");
    let mut password = None;
    for (i, (share, behaviour)) in shares.iter().zip(&behaviours).enumerate() {
        let outcome = run_cbs::<Sha256, _, _, _>(
            &task,
            &screener,
            *share,
            behaviour,
            ParticipantStorage::Full,
            &CbsConfig {
                task_id: i as u64,
                samples: 25,
                seed: 1000 + i as u64,
                report_audit: 0,
            },
        )?;
        println!(
            "participant {i}: share {share}, behaviour {:<11} → {}",
            behaviour.name(),
            outcome.verdict
        );
        if let Some(report) = outcome.reports.first() {
            password = Some(report.input);
        }
    }
    match password {
        Some(x) => println!("\npassword recovered: x = {x}"),
        None => println!("\npassword not in the accepted shares — reassign the rejected share!"),
    }

    println!("\nSame scenario under the ringer scheme (d = 25 ringers each):\n");
    for (i, (share, behaviour)) in shares.iter().zip(&behaviours).enumerate() {
        let outcome = run_ringer(
            &task,
            &screener,
            *share,
            behaviour,
            &RingerConfig {
                task_id: 100 + i as u64,
                ringers: 25,
                seed: 2000 + i as u64,
            },
        )?;
        println!(
            "participant {i}: behaviour {:<11} → {} (supervisor pre-paid {} f-evals)",
            behaviour.name(),
            outcome.verdict,
            outcome.supervisor_costs.f_evals
        );
    }
    println!(
        "\nTrade-off reproduced: ringers are cheaper on the wire but the supervisor\n\
         pays d evaluations per participant up front, and the trick only works for\n\
         one-way f — CBS handles generic computations."
    );
    Ok(())
}
