//! The IBM smallpox grid, uncheatable — with Section 3.3 storage limits.
//!
//! A docking workload over 2¹⁶ synthetic molecules, verified with CBS
//! under three participant storage budgets: the full Merkle tree, and
//! partial trees keeping only the top levels (`ℓ = 6`, `ℓ = 10`). The
//! run prints the measured storage/recomputation trade-off — the
//! `rco = 2m/S` law — on a real workload.
//!
//! Run: `cargo run --release --example drug_screening`

use uncheatable_grid::core::analysis::rco;
use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::HonestWorker;
use uncheatable_grid::hash::{HashFunction, Sha256};
use uncheatable_grid::merkle::tree_height;
use uncheatable_grid::sim::Table;
use uncheatable_grid::task::workloads::DrugScreening;
use uncheatable_grid::task::Domain;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lab = DrugScreening::new(1796); // Jenner's vaccine, 1796
    let screener = lab.screener();
    let library = Domain::new(0, 1 << 14);
    let m = 32;
    let height = tree_height(library.len());

    println!(
        "screening {} molecules, m = {m} samples, tree height H = {height}\n",
        library.len()
    );

    let mut table = Table::new([
        "storage",
        "tree nodes kept",
        "digest bytes kept",
        "participant f-evals",
        "extra vs full",
        "measured rco",
        "verdict",
    ]);

    let full_nodes = 2 * library.len() - 1;
    for (label, storage) in [
        ("full tree", ParticipantStorage::Full),
        (
            "partial ℓ=6",
            ParticipantStorage::Partial { subtree_height: 6 },
        ),
        (
            "partial ℓ=10",
            ParticipantStorage::Partial { subtree_height: 10 },
        ),
    ] {
        let outcome = run_cbs::<Sha256, _, _, _>(
            &lab,
            &screener,
            library,
            &HonestWorker,
            storage,
            &CbsConfig {
                task_id: 1,
                samples: m,
                seed: 3,
                report_audit: 0,
            },
        )?;
        let base = library.len() * lab_unit_cost(&lab);
        let extra = outcome.participant_costs.f_evals.saturating_sub(base);
        let (nodes, bytes) = match storage {
            ParticipantStorage::Full => (full_nodes, full_nodes * 32 + library.len() * 16),
            ParticipantStorage::Partial { subtree_height } => {
                let s = 1u64 << (height - subtree_height + 1);
                (s - 1, (s - 1) * Sha256::DIGEST_LEN as u64)
            }
        };
        let measured_rco = extra as f64 / base as f64;
        table.push([
            label.to_string(),
            nodes.to_string(),
            bytes.to_string(),
            outcome.participant_costs.f_evals.to_string(),
            extra.to_string(),
            format!("{measured_rco:.2e}"),
            outcome.verdict.to_string(),
        ]);
        if let ParticipantStorage::Partial { subtree_height } = storage {
            let s = 1u64 << (height - subtree_height + 1);
            println!(
                "ℓ = {subtree_height}: paper's formula rco = 2m/S = {:.2e} (S = {s} nodes)",
                rco(m as u64, s)
            );
        }
    }
    println!();
    print!("{table}");
    println!(
        "\nhits below the binding-energy threshold were reported and verified.\n\
         The rco column follows 2m/S exactly: generous storage (ℓ=6) makes the\n\
         recompute overhead negligible, while squeezing to 31 nodes (ℓ=10)\n\
         costs 2× the task — §3.3's trade-off, both sides of it."
    );
    Ok(())
}

fn lab_unit_cost(lab: &DrugScreening) -> u64 {
    use uncheatable_grid::task::ComputeTask;
    lab.unit_cost()
}
