//! SETI@home, uncheatable: the paper's opening example.
//!
//! Participants analyse synthetic radio chunks for narrowband carriers;
//! "top-contributor" cheaters (the behaviour SETI@home actually reported)
//! fake a fraction of their chunks. NI-CBS verifies each work unit without
//! the supervisor re-receiving — or re-computing — the whole unit, and the
//! run shows what the cheater's laziness would have cost science: planted
//! signals in the faked region go unreported.
//!
//! Run: `cargo run --release --example seti_signal`

use uncheatable_grid::core::scheme::ni_cbs::{run_ni_cbs, NiCbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::{CheatSelection, HonestWorker, SemiHonestCheater};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::SetiSignal;
use uncheatable_grid::task::{ComputeTask, Domain, Screener, ZeroGuesser};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telescope = SetiSignal::new(1977); // the year of the Wow! signal
    let screener = telescope.screener();
    let work_unit = Domain::new(0, 2_000);
    let config = NiCbsConfig {
        task_id: 1,
        samples: 40,
        g_iterations: 1,
        report_audit: 0,
        audit_seed: 0,
    };

    // Ground truth, for the narration only.
    let planted: Vec<u64> = work_unit
        .inputs()
        .filter(|&x| telescope.has_planted_signal(x))
        .collect();
    println!(
        "work unit: {} chunks, {} carry planted carriers\n",
        work_unit.len(),
        planted.len()
    );

    println!("== Honest analysis (NI-CBS verified) ==");
    let outcome = run_ni_cbs::<Sha256, _, _, _>(
        &telescope,
        &screener,
        work_unit,
        &HonestWorker,
        ParticipantStorage::Full,
        &config,
    )?;
    println!("verdict: {}", outcome.verdict);
    let mut found: Vec<u64> = outcome.reports.iter().map(|r| r.input).collect();
    found.sort_unstable();
    let true_hits = found.iter().filter(|x| planted.contains(x)).count();
    println!(
        "detections reported: {} ({} of them planted carriers)",
        found.len(),
        true_hits
    );
    println!(
        "DFT work: {} chunk analyses, {} tree hashes, {} B uploaded\n",
        outcome.participant_costs.f_evals / telescope.unit_cost(),
        outcome.participant_costs.hash_ops,
        outcome.supervisor_link.bytes_received
    );

    println!("== Leaderboard chaser (fakes 40% of chunks) ==");
    let cheater = SemiHonestCheater::new(0.6, CheatSelection::Scattered, ZeroGuesser::new(8), 42);
    let outcome = run_ni_cbs::<Sha256, _, _, _>(
        &telescope,
        &screener,
        work_unit,
        &cheater,
        ParticipantStorage::Full,
        &config,
    )?;
    println!("verdict: {}", outcome.verdict);
    // What would have been lost had the cheating gone undetected: planted
    // signals in chunks the cheater never analysed.
    let missed = planted
        .iter()
        .filter(|&&x| {
            let truth = telescope.compute(x);
            // The cheater's committed value for x differs from the truth iff
            // it guessed there; a guessed chunk can't report a real carrier.
            outcome.reports.iter().all(|r| r.input != x) && screener.screen(x, &truth).is_some()
        })
        .count();
    println!(
        "science at risk: {missed} planted carriers sat in chunks the cheater faked or \
         mis-screened"
    );
    println!(
        "cheater evaluated only {} of {} chunks before NI-CBS rejected the unit",
        outcome.participant_costs.f_evals / telescope.unit_cost(),
        work_unit.len()
    );
    Ok(())
}
