//! The Section 4 scenario: a GRACE-style Grid Resource Broker stands
//! between supervisor and participants, so interactive CBS's
//! commit → challenge round-trip is impossible — NI-CBS to the rescue.
//!
//! Three participants run on their own threads behind the broker. The
//! supervisor never addresses them directly; it just pushes assignments
//! and receives single-shot commit-and-proof bundles routed back by task
//! id. One participant is a cheater and is rejected. Finally the retry
//! attack is run and priced out with the Eq. (5) hardened generator.
//!
//! Run: `cargo run --release --example broker_noninteractive`

use uncheatable_grid::core::analysis::{min_g_cost_for_uncheatability, ni_expected_attempts};
use uncheatable_grid::core::sampling::derive_samples;
use uncheatable_grid::core::scheme::cbs::verify_round;
use uncheatable_grid::core::scheme::ni_cbs::{
    participant_ni_cbs, retry_attack, NiCbsConfig, RetryAttackConfig,
};
use uncheatable_grid::core::{ParticipantStorage, SchemeError, Verdict};
use uncheatable_grid::grid::{
    duplex, Assignment, Broker, CheatSelection, CostLedger, Endpoint, HonestWorker, Message,
    SemiHonestCheater, WorkerBehaviour,
};
use uncheatable_grid::hash::{HashFunction, IteratedHash, Sha256};
use uncheatable_grid::task::workloads::PrimalitySearch;
use uncheatable_grid::task::{Domain, Screener, ZeroGuesser};

const M: usize = 25;
const G_ITER: u64 = 1;

/// Receives and verifies one routed-back commit bundle.
fn collect_task(
    endpoint: &Endpoint,
    task: &PrimalitySearch,
    screener: &dyn Screener,
    domain: Domain,
    ledger: &CostLedger,
) -> Result<(u64, Verdict), SchemeError> {
    let Message::CommitAndProofs {
        task_id,
        root,
        proofs,
    } = endpoint.recv()?
    else {
        return Err(SchemeError::UnexpectedMessage {
            expected: "CommitAndProofs",
            got: "other",
        });
    };
    let Message::Reports { reports, .. } = endpoint.recv()? else {
        return Err(SchemeError::UnexpectedMessage {
            expected: "Reports",
            got: "other",
        });
    };
    let root = Sha256::digest_from_bytes(&root).ok_or(SchemeError::MalformedPayload {
        what: "commitment root",
    })?;
    let g = IteratedHash::<Sha256>::new(G_ITER);
    let samples = derive_samples(&g, root.as_ref(), M, domain.len(), ledger);
    let derivation_ok =
        proofs.len() == samples.len() && samples.iter().zip(&proofs).all(|(s, p)| *s == p.index);
    let verdict = if derivation_ok {
        verify_round::<Sha256>(
            task, screener, domain, &root, &samples, &proofs, &reports, 0, 0, ledger,
        )?
    } else {
        Verdict::SampleDerivationMismatch
    };
    endpoint.send(&Message::Verdict {
        task_id,
        accepted: verdict.is_accepted(),
    })?;
    Ok((task_id, verdict))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Hunting primes among odd numbers near 10^12 (GIMPS-flavoured).
    let task = PrimalitySearch::new(1_000_000_000_001, 2);
    let prime_screener = PrimeScreener;
    let search_space = Domain::new(0, 3 * 4096);
    let shares: Vec<Domain> = search_space.split(3)?.into_iter().collect();

    // Wire up: supervisor ↔ broker ↔ 3 participants.
    let (sup_ep, broker_up) = duplex();
    let mut broker_down = Vec::new();
    let mut part_eps = Vec::new();
    for _ in 0..3 {
        let (b, p) = duplex();
        broker_down.push(b);
        part_eps.push(p);
    }
    let mut broker = Broker::new(broker_up, broker_down);

    let honest = HonestWorker;
    let cheater = SemiHonestCheater::new(0.5, CheatSelection::Scattered, ZeroGuesser::new(5), 77);
    let behaviours: Vec<&dyn WorkerBehaviour> = vec![&honest, &cheater, &honest];
    let sup_ledger = CostLedger::new();

    let verdicts = std::thread::scope(|scope| -> Result<Vec<(u64, Verdict)>, SchemeError> {
        // Participants: blind NI-CBS workers behind the broker.
        for (ep, behaviour) in part_eps.iter().zip(behaviours) {
            let task = &task;
            scope.spawn(move || {
                let ledger = CostLedger::new();
                let config = NiCbsConfig {
                    task_id: 0, // participants learn the id from the Assign
                    samples: M,
                    g_iterations: G_ITER,
                    report_audit: 0,
                    audit_seed: 0,
                };
                participant_ni_cbs::<Sha256, _, _, _>(
                    ep,
                    task,
                    &PrimeScreener,
                    &behaviour,
                    ParticipantStorage::Full,
                    &config,
                    &ledger,
                )
            });
        }
        // Supervisor: push three assignments into the broker.
        for (i, share) in shares.iter().enumerate() {
            sup_ep.send(&Message::Assign(Assignment {
                task_id: i as u64,
                domain: *share,
            }))?;
        }
        // Broker relays outward, then routes each bundle + verdict.
        broker.relay_outward(3).map_err(SchemeError::Grid)?;
        let mut verdicts = Vec::new();
        for i in 0..3u64 {
            broker.relay_inward_for(i).map_err(SchemeError::Grid)?; // CommitAndProofs
            broker.relay_inward_for(i).map_err(SchemeError::Grid)?; // Reports
            let (task_id, verdict) = collect_task(
                &sup_ep,
                &task,
                &prime_screener,
                shares[i as usize],
                &sup_ledger,
            )?;
            verdicts.push((task_id, verdict));
            broker.relay_outward(1).map_err(SchemeError::Grid)?; // Verdict back
        }
        Ok(verdicts)
    })?;

    println!("Brokered NI-CBS round (supervisor never saw a participant):\n");
    for (task_id, verdict) in &verdicts {
        println!("task {task_id}: {verdict}");
    }
    println!(
        "\nbroker relayed {} outward / {} inward messages; supervisor traffic: {} B out, {} B in",
        broker.stats().outward,
        broker.stats().inward,
        sup_ep.stats().bytes_sent,
        sup_ep.stats().bytes_received
    );

    println!("\n== Why the non-interactive scheme needs a hardened g ==");
    let r: f64 = 0.5;
    let small_m = 6;
    println!(
        "with m = {small_m}, a cheater expects r^-m = {} retry attempts:",
        ni_expected_attempts(r, small_m as u64)
    );
    let attacker = SemiHonestCheater::new(r, CheatSelection::Prefix, ZeroGuesser::new(1), 1);
    let outcome = retry_attack::<Sha256, _, _>(
        &task,
        Domain::new(0, 1 << 10),
        &attacker,
        &RetryAttackConfig {
            samples: small_m,
            g_iterations: 1,
            max_attempts: 1_000_000,
        },
    )?;
    println!(
        "measured: succeeded after {} attempts, spending {} unit hashes — \
         far less than honestly computing the other half",
        outcome.attempts,
        outcome.g_unit_hashes + outcome.tree_hashes
    );
    let c_g = min_g_cost_for_uncheatability(r, small_m as u64, 1 << 10, 12);
    println!(
        "Eq. (5) defence: set g = MD5^k with k ≥ {:.0}; then the expected attack \
         cost exceeds the task's {} work units",
        c_g.ceil(),
        (1u64 << 10) * 12
    );
    Ok(())
}

/// Screens for inputs whose primality verdict is 1.
#[derive(Clone, Copy)]
struct PrimeScreener;

impl Screener for PrimeScreener {
    fn screen(&self, x: u64, fx: &[u8]) -> Option<uncheatable_grid::task::ScreenReport> {
        (fx.len() == 16 && fx[0] == 1).then(|| uncheatable_grid::task::ScreenReport {
            input: x,
            payload: fx.to_vec(),
        })
    }
}
