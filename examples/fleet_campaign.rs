//! A full verification campaign: detection is only half the story — the
//! supervisor must also *recover* the tainted shares.
//!
//! Eight participants (two of them cheaters with different laziness
//! levels) screen a drug library under NI-CBS. Rejected shares are
//! reassigned to a trusted fallback pool in follow-up rounds until the
//! whole library is verifiably screened. The run prints the per-round
//! verdict map and the total cycle bill — the cost cheating imposes on
//! the grid.
//!
//! Run: `cargo run --release --example fleet_campaign`

use uncheatable_grid::core::{
    run_campaign, FleetConfig, FleetScheme, Parallelism, ParticipantStorage,
};
use uncheatable_grid::grid::{CheatSelection, HonestWorker, SemiHonestCheater, WorkerBehaviour};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::DrugScreening;
use uncheatable_grid::task::{ComputeTask, Domain, ZeroGuesser};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lab = DrugScreening::new(2026);
    let screener = lab.screener();
    let library = Domain::new(0, 8 * 600);

    let honest = HonestWorker;
    let slacker = SemiHonestCheater::new(0.8, CheatSelection::Scattered, ZeroGuesser::new(1), 10);
    let freeloader =
        SemiHonestCheater::new(0.1, CheatSelection::Scattered, ZeroGuesser::new(2), 11);
    let fleet: Vec<&dyn WorkerBehaviour> = vec![
        &honest,
        &honest,
        &slacker,
        &honest,
        &freeloader,
        &honest,
        &honest,
        &honest,
    ];

    let summary = run_campaign::<Sha256, _, _, _, _>(
        &lab,
        &screener,
        library,
        &fleet,
        &HonestWorker, // the trusted re-run pool
        &FleetConfig {
            scheme: FleetScheme::NiCbs {
                samples: 30,
                g_iterations: 1,
                report_audit: 2,
            },
            storage: ParticipantStorage::Full,
            seed: 14,
            parallelism: Parallelism::default(),
        },
        4,
    )?;

    println!(
        "campaign over {} molecules, fleet of {} ({} rounds needed, complete: {})\n",
        library.len(),
        fleet.len(),
        summary.rounds.len(),
        summary.complete
    );
    for (i, round) in summary.rounds.iter().enumerate() {
        println!("round {}:", i + 1);
        for member in &round.members {
            println!(
                "  share {:>14}: {}",
                member.share.to_string(),
                member.outcome.verdict
            );
        }
    }
    println!(
        "\ncandidate molecules reported (verified): {}",
        summary.reports.len()
    );
    let ideal = library.len() * lab.unit_cost();
    let burned = summary.total_participant_f_evals();
    println!(
        "cycle bill: {} work units vs {} ideal (+{:.1}% — the price of cheating,\n\
         paid in re-runs rather than in corrupted science)",
        burned,
        ideal,
        100.0 * (burned as f64 / ideal as f64 - 1.0)
    );
    Ok(())
}
