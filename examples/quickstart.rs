//! Quickstart: one interactive CBS round, narrated.
//!
//! Reproduces the Fig. 1 story of the paper on a small domain: a
//! supervisor assigns a password-search task, the participant commits a
//! Merkle tree over its results, the supervisor samples and verifies.
//! Then the same round is run against a half-honest cheater, who is
//! caught.
//!
//! Run: `cargo run --example quickstart`

use uncheatable_grid::core::scheme::cbs::{run_cbs, CbsConfig};
use uncheatable_grid::core::ParticipantStorage;
use uncheatable_grid::grid::{CheatSelection, HonestWorker, SemiHonestCheater};
use uncheatable_grid::hash::Sha256;
use uncheatable_grid::task::workloads::PasswordSearch;
use uncheatable_grid::task::{Domain, ZeroGuesser};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The supervisor wants f(x) = MD5(salt‖x) for one million… well, 4096
    // keys, hunting for the one that hashes to a known target.
    let task = PasswordSearch::with_hidden_password(2024, 1337);
    let screener = task.match_screener();
    let domain = Domain::new(0, 4096);
    let config = CbsConfig {
        task_id: 1,
        samples: 30,
        seed: 7,
        report_audit: 0,
    };

    println!("== Honest participant ==");
    let outcome = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &HonestWorker,
        ParticipantStorage::Full,
        &config,
    )?;
    println!("verdict:          {}", outcome.verdict);
    println!(
        "password found:   x = {} (reported by the screener)",
        outcome.reports[0].input
    );
    println!(
        "traffic:          {} B down, {} B up (vs {} B for a naive full upload)",
        outcome.supervisor_link.bytes_sent,
        outcome.supervisor_link.bytes_received,
        4096 * 16,
    );
    println!(
        "supervisor work:  {} f-evals ({} sampled checks) — not 4096",
        outcome.supervisor_costs.f_evals, outcome.supervisor_costs.verify_ops,
    );

    println!("\n== Semi-honest cheater (r = 0.5) ==");
    let cheater = SemiHonestCheater::new(0.5, CheatSelection::Scattered, ZeroGuesser::new(3), 99);
    let outcome = run_cbs::<Sha256, _, _, _>(
        &task,
        &screener,
        domain,
        &cheater,
        ParticipantStorage::Full,
        &config,
    )?;
    println!("verdict:          {}", outcome.verdict);
    println!(
        "cheater's saving: computed only {} of 4096 evaluations before being caught",
        outcome.participant_costs.f_evals,
    );
    println!(
        "detection theory: Pr[survive 30 samples] = 0.5^30 ≈ {:.1e}",
        0.5f64.powi(30),
    );
    Ok(())
}
